(** Asynchronous execution of an anonymous protocol over a network.

    The engine injects the protocol's initial emission on the out-edges of
    [s], then repeatedly asks the {!Scheduler} for an in-flight message,
    delivers it to its target vertex, applies the protocol's [receive], and
    puts the produced messages in flight.  It stops as soon as the terminal's
    state becomes accepting ([Terminated]), when no message is in flight
    ([Quiescent] — how "the protocol never halts" manifests in a finite
    simulation of the paper's non-termination cases), or at a step limit.

    Every delivery is charged its exact encoded size in bits (plus
    [payload_bits], modelling the broadcast message [m] that rides on every
    protocol message), giving the paper's three complexity measures directly:
    total communication, required bandwidth (max bits over one edge), and
    message-size bounds.  Per-vertex memory (the state-space quality measure
    of Section 2) is tracked as [max_state_bits].

    When a {!Faults} specification is supplied, every send is filtered
    through its per-edge plan: copies may be dropped, duplicated, held back
    ([delay] — re-entering the pool at a later step, which reorders even the
    [Fifo] schedule), corrupted (one bit of the wire encoding flipped, then
    pushed through the protocol's real [decode] — an unparseable encoding is
    consumed undelivered and counted in [garbled_drops], a parseable-but-
    different one is delivered and counted in [corrupted_deliveries]), or
    lost to a permanently killed edge.  Faulty runs are reproducible: all
    draws come from per-edge PRNG streams derived from the fault seed.

    A {!Vfaults} specification makes the {e vertices} unreliable as well:
    deliveries can be stuttered away, swallowed by a down vertex, or trigger
    a crash (crash-stop, restart-with-amnesia, restart-from-checkpoint).
    A {!Supervisor} config arms the self-healing layer: per-vertex state
    checkpoints every [checkpoint_every] processed deliveries (cadence 1 by
    default — see {!Supervisor} for why that cadence is the sound one), and
    when the pool runs dry with the terminal not accepting, up to
    [max_retries] exponential-backoff retransmission rounds of each edge's
    last message.  Both compose with edge faults and are reproducible from
    their seeds. *)

type outcome =
  | Terminated  (** The terminal's stopping predicate fired. *)
  | Quiescent  (** No messages in flight and the terminal never accepted. *)
  | Step_limit  (** Aborted; indicates a diverging protocol or a tiny limit. *)
  | Cancelled
      (** The caller's [stop] hook returned [true] between two deliveries
          (cooperative cancellation — deadlines and [cancel] requests in the
          serving layer).  In-flight accounting is intact: undelivered
          copies stay counted in [final_in_flight] and reach
          [on_undelivered], exactly as under [Step_limit]. *)

type fault_stats = {
  dropped_copies : int;
      (** Copies lost to the drop coin or to a dead edge. *)
  extra_copies : int;  (** Duplicates materialized beyond the originals. *)
  delayed_copies : int;  (** Copies held back at least one step. *)
  corrupted_deliveries : int;
      (** Deliveries whose decoded message differed from what was sent. *)
  garbled_drops : int;
      (** Corrupted copies whose encoding no longer decoded; consumed
          undelivered. *)
  checksum_rejects : int;
      (** Corrupted copies a checksum-bearing codec {e detected} and
          refused (it raised {!Protocol_intf.Checksum_reject}); consumed
          undelivered but, unlike [garbled_drops], counted as a success of
          the redundancy layer. *)
  dead_edges : int list;  (** Dense indices of permanently killed edges. *)
}

val no_faults_stats : fault_stats
(** All-zero counters, as reported by fault-free runs. *)

type vertex_fault_stats = {
  crashes : int;  (** Crash events fired (any recovery mode). *)
  restarts : int;  (** Crashes that came back up (amnesia or restore). *)
  lost_state_bits : int;
      (** State bits destroyed by crashes: the full pre-crash state under
          amnesia, the gap down to the checkpoint under restore. *)
  down_drops : int;
      (** Deliveries swallowed by a down or stopped vertex. *)
  stuttered : int;  (** Deliveries silently swallowed by a healthy vertex. *)
  stopped_vertices : int list;  (** Crash-stopped vertices, sorted. *)
  checkpoints : int;  (** Per-vertex state snapshots taken. *)
  replayed : int;  (** Copies re-sent by supervisor retransmission rounds. *)
}

val no_vfaults_stats : vertex_fault_stats

type churn_stats = {
  adds : int;  (** Initially-absent edges that appeared. *)
  removes : int;  (** Removal transitions fired. *)
  heals : int;  (** Removed edges that came back up. *)
  messages_lost_in_flight : int;
      (** Copies swallowed by an absent edge (charged no bits — they never
          crossed the wire). *)
  window_violations : int;
      (** Outages breaching the installed {!Churn} T-interval contract;
          0 without a contract, and 0 by construction after
          {!Churn.constrain}. *)
}

val no_churn_stats : churn_stats

type 'state report = {
  outcome : outcome;
  deliveries : int;  (** Total messages delivered. *)
  total_bits : int;  (** Total communication complexity, in bits. *)
  max_edge_bits : int;  (** Required bandwidth: max bits over a single edge. *)
  max_message_bits : int;  (** Largest single message. *)
  max_state_bits : int;  (** Largest per-vertex state ever held. *)
  max_in_flight : int;  (** Channel high-water mark: most messages in flight. *)
  final_in_flight : int;
      (** Messages still pooled (or delay-held) when the run stopped: 0 for
          genuine quiescence, positive under [Step_limit] or early
          termination — distinguishing starvation from true quiescence. *)
  distinct_messages : int;  (** |Sigma_G|: distinct symbols seen on edges. *)
  edge_messages : int array;  (** Per dense edge index. *)
  edge_bits : int array;
  visited : bool array;
      (** Vertices that processed at least one (parseable) message. *)
  states : 'state array;  (** Final state of every vertex. *)
  fault_stats : fault_stats;  (** What the fault plan actually did. *)
  vfault_stats : vertex_fault_stats;
      (** What the vertex-fault plan and the supervisor actually did. *)
  churn_stats : churn_stats;
      (** What the churn adversary actually did; reconciles exactly with the
          [engine.churn.*] Obs counters. *)
}

type event = {
  step : int;
  seq : int;
      (** The delivered copy's global send sequence number — the currency
          of {!Scheduler.Replay} schedules. *)
  from_vertex : Digraph.vertex;
  from_port : int;
  to_vertex : Digraph.vertex;
  to_port : int;
  bits : int;
}
(** One delivery, as seen by a trace hook. *)

exception Codec_mismatch of string
(** Raised in [verify_codec] mode when a message does not round-trip
    through its wire encoding. *)

(** Telemetry cells resolved once per run — the [engine.*] counter,
    histogram and gauge handles plus the timeline lane and sampling
    cadence.  Exposed so alternative engines (the Flatcore flat engine,
    the parallel driver) update the {e same} named cells with the same
    semantics; reports then reconcile with the registry regardless of
    which engine produced them. *)
type obs_hooks = {
  oh_timeline : Obs.Timeline.t;
  oh_sample_every : int;
  oh_track : int;
  c_deliveries : Obs.Registry.counter;
  c_bits : Obs.Registry.counter;
  c_sends : Obs.Registry.counter;
  c_corrupted : Obs.Registry.counter;
  c_garbled : Obs.Registry.counter;
  c_dropped : Obs.Registry.counter;
  c_extra : Obs.Registry.counter;
  c_delayed : Obs.Registry.counter;
  c_checksum_rejects : Obs.Registry.counter;
  c_crashes : Obs.Registry.counter;
  c_restarts : Obs.Registry.counter;
  c_lost_state_bits : Obs.Registry.counter;
  c_down_drops : Obs.Registry.counter;
  c_stuttered : Obs.Registry.counter;
  c_checkpoints : Obs.Registry.counter;
  c_replayed : Obs.Registry.counter;
  c_churn_adds : Obs.Registry.counter;
  c_churn_removes : Obs.Registry.counter;
  c_churn_heals : Obs.Registry.counter;
  c_churn_lost : Obs.Registry.counter;
  c_churn_violations : Obs.Registry.counter;
  c_receive_ns : Obs.Registry.counter;
  h_message_bits : Obs.Registry.histogram;
  h_receive_ns : Obs.Registry.histogram;
  g_in_flight : Obs.Registry.gauge;
  g_wavefront : Obs.Registry.gauge;
  g_residual : Obs.Registry.gauge;
}

val obs_hooks : ?track:int -> Obs.t -> obs_hooks
(** Resolve (registering on first use) every cell against the sink's
    registry.  [track] is the timeline lane; 0 for sequential engines. *)

module Make (P : Protocol_intf.PROTOCOL) : sig
  type state = P.state
  type message = P.message

  val run :
    ?scheduler:Scheduler.t ->
    ?payload_bits:int ->
    ?step_limit:int ->
    ?faults:Faults.t ->
    ?vfaults:Vfaults.t ->
    ?churn:Churn.t ->
    ?supervisor:Supervisor.config ->
    ?verify_codec:bool ->
    ?stop:(unit -> bool) ->
    ?obs:Obs.t ->
    ?lineage:Obs.Lineage.t ->
    ?on_deliver:(event -> P.message -> unit) ->
    ?on_pop:(int -> unit) ->
    ?on_undelivered:(P.message -> unit) ->
    Digraph.t ->
    P.state report
  (** Defaults: [scheduler = Fifo], [payload_bits = 0],
      [step_limit = 10_000_000], no faults, no vertex faults, no churn,
      no supervisor, [verify_codec = false], no [stop] hook.

      [stop], when given, is polled between deliveries; the first [true]
      ends the run with outcome {!Cancelled} at a message boundary — no
      partial receive, no accounting leak.  The serving layer implements
      both [cancel] requests and per-session deadlines with it.

      [churn] layers the edge add/remove adversary {e under} the fault and
      vertex-fault filters: a copy popped for delivery on a currently-absent
      edge is consumed (visible to [on_pop], so replays stay faithful) but
      charged no bits and never reaches the edge- or vertex-fault coins.
      Churn clocks are edge-local — see {!Churn}.

      With [supervisor] armed, per-vertex checkpoints are durable: an
      [Amnesia] crash restores from the last checkpoint exactly like
      [Restore] (full state loss after a vertex forwarded its flow would
      otherwise erase coverage invisibly to the terminal's conservation
      cut and falsely terminate), and quiescence short of acceptance
      triggers retransmission rounds of each edge's last message with
      exponential backoff, up to [max_retries].

      [on_pop] fires with the seq number of {e every} consumed copy — also
      the ones a garble destroys or a down vertex swallows — which is
      exactly the stream a faithful {!Scheduler.Replay} schedule must
      contain ([on_deliver] only sees copies that reached [P.receive]).

      [obs], when given, turns on telemetry: [engine.*] counters
      (deliveries, total_bits, sends, corrupted/garbled, per-run fault
      copy totals), [engine.message_bits] / [engine.receive_ns]
      histograms, and — every [sample_every] deliveries — gauge +
      timeline samples of in-flight depth, wavefront size (visited
      vertices) and the message-count cut residual
      [entered - delivered - in_flight], which is 0 whenever the
      engine's accounting is conserving messages.  Counter totals
      reconcile exactly with the returned {!type:report}.  The run also
      records [engine.gc.*] gauges ({!Gc.quick_stat} allocation deltas
      and end-of-run heap size) and mirrors the timeline ring's
      overwrite count as the [timeline.dropped] counter.

      [lineage], when given, records the causal-provenance forest: every
      consumed copy becomes an {!Obs.Lineage} node (id = the 1-based
      delivery counter) whose parent is the delivery whose [P.receive]
      emitted it — 0 for root emissions and supervisor retransmissions.
      Node count reconciles exactly with [report.deliveries], and ids,
      parents and depths are identical across engine implementations for
      the same schedule.

      [on_undelivered] is called once per message still in flight (pooled or
      delay-held) when the run stops — together with [states] this is the
      full final linear cut, so callers can evaluate a protocol's
      conservation law even on runs that terminate with messages pending. *)
end
