(** Asynchronous execution of an anonymous protocol over a network.

    The engine injects the protocol's initial emission on the out-edges of
    [s], then repeatedly asks the {!Scheduler} for an in-flight message,
    delivers it to its target vertex, applies the protocol's [receive], and
    puts the produced messages in flight.  It stops as soon as the terminal's
    state becomes accepting ([Terminated]), when no message is in flight
    ([Quiescent] — how "the protocol never halts" manifests in a finite
    simulation of the paper's non-termination cases), or at a step limit.

    Every delivery is charged its exact encoded size in bits (plus
    [payload_bits], modelling the broadcast message [m] that rides on every
    protocol message), giving the paper's three complexity measures directly:
    total communication, required bandwidth (max bits over one edge), and
    message-size bounds.  Per-vertex memory (the state-space quality measure
    of Section 2) is tracked as [max_state_bits].

    When a {!Faults} specification is supplied, every send is filtered
    through its per-edge plan: copies may be dropped, duplicated, held back
    ([delay] — re-entering the pool at a later step, which reorders even the
    [Fifo] schedule), corrupted (one bit of the wire encoding flipped, then
    pushed through the protocol's real [decode] — an unparseable encoding is
    consumed undelivered and counted in [garbled_drops], a parseable-but-
    different one is delivered and counted in [corrupted_deliveries]), or
    lost to a permanently killed edge.  Faulty runs are reproducible: all
    draws come from per-edge PRNG streams derived from the fault seed. *)

type outcome =
  | Terminated  (** The terminal's stopping predicate fired. *)
  | Quiescent  (** No messages in flight and the terminal never accepted. *)
  | Step_limit  (** Aborted; indicates a diverging protocol or a tiny limit. *)

type fault_stats = {
  dropped_copies : int;
      (** Copies lost to the drop coin or to a dead edge. *)
  extra_copies : int;  (** Duplicates materialized beyond the originals. *)
  delayed_copies : int;  (** Copies held back at least one step. *)
  corrupted_deliveries : int;
      (** Deliveries whose decoded message differed from what was sent. *)
  garbled_drops : int;
      (** Corrupted copies whose encoding no longer decoded; consumed
          undelivered. *)
  dead_edges : int list;  (** Dense indices of permanently killed edges. *)
}

val no_faults_stats : fault_stats
(** All-zero counters, as reported by fault-free runs. *)

type 'state report = {
  outcome : outcome;
  deliveries : int;  (** Total messages delivered. *)
  total_bits : int;  (** Total communication complexity, in bits. *)
  max_edge_bits : int;  (** Required bandwidth: max bits over a single edge. *)
  max_message_bits : int;  (** Largest single message. *)
  max_state_bits : int;  (** Largest per-vertex state ever held. *)
  max_in_flight : int;  (** Channel high-water mark: most messages in flight. *)
  final_in_flight : int;
      (** Messages still pooled (or delay-held) when the run stopped: 0 for
          genuine quiescence, positive under [Step_limit] or early
          termination — distinguishing starvation from true quiescence. *)
  distinct_messages : int;  (** |Sigma_G|: distinct symbols seen on edges. *)
  edge_messages : int array;  (** Per dense edge index. *)
  edge_bits : int array;
  visited : bool array;
      (** Vertices that processed at least one (parseable) message. *)
  states : 'state array;  (** Final state of every vertex. *)
  fault_stats : fault_stats;  (** What the fault plan actually did. *)
}

type event = {
  step : int;
  from_vertex : Digraph.vertex;
  from_port : int;
  to_vertex : Digraph.vertex;
  to_port : int;
  bits : int;
}
(** One delivery, as seen by a trace hook. *)

exception Codec_mismatch of string
(** Raised in [verify_codec] mode when a message does not round-trip
    through its wire encoding. *)

module Make (P : Protocol_intf.PROTOCOL) : sig
  val run :
    ?scheduler:Scheduler.t ->
    ?payload_bits:int ->
    ?step_limit:int ->
    ?faults:Faults.t ->
    ?verify_codec:bool ->
    ?obs:Obs.t ->
    ?on_deliver:(event -> P.message -> unit) ->
    ?on_undelivered:(P.message -> unit) ->
    Digraph.t ->
    P.state report
  (** Defaults: [scheduler = Fifo], [payload_bits = 0],
      [step_limit = 10_000_000], no faults, [verify_codec = false].

      [obs], when given, turns on telemetry: [engine.*] counters
      (deliveries, total_bits, sends, corrupted/garbled, per-run fault
      copy totals), [engine.message_bits] / [engine.receive_ns]
      histograms, and — every [sample_every] deliveries — gauge +
      timeline samples of in-flight depth, wavefront size (visited
      vertices) and the message-count cut residual
      [entered - delivered - in_flight], which is 0 whenever the
      engine's accounting is conserving messages.  Counter totals
      reconcile exactly with the returned {!type:report}.

      [on_undelivered] is called once per message still in flight (pooled or
      delay-held) when the run stops — together with [states] this is the
      full final linear cut, so callers can evaluate a protocol's
      conservation law even on runs that terminate with messages pending. *)
end
