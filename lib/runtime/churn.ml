type plan = { remove : float; max_downtime : int }

let stable = { remove = 0.0; max_downtime = 0 }

let check_prob name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Churn: %s must be in [0,1]" name)

let validate p =
  check_prob "remove" p.remove;
  if p.max_downtime < 0 then invalid_arg "Churn: max_downtime must be >= 0";
  p

let plan ?(remove = 0.0) ?(max_downtime = 0) () =
  validate { remove; max_downtime }

let is_stable p = p.remove = 0.0

type event =
  | Remove of { edge : int; at : int; down_for : int }
  | Add of { edge : int; at : int }

let remove_event ~edge ~at ?(down_for = 1) () =
  if at < 1 then invalid_arg "Churn.remove_event: at must be >= 1";
  if down_for < 0 then invalid_arg "Churn.remove_event: down_for must be >= 0";
  Remove { edge; at; down_for }

let add_event ~edge ~at =
  if at < 1 then invalid_arg "Churn.add_event: at must be >= 1";
  Add { edge; at }

let describe_event = function
  | Remove { edge; at; down_for } ->
      Printf.sprintf "churn-rm:%d@%d/%d" edge at down_for
  | Add { edge; at } -> Printf.sprintf "churn-add:%d@%d" edge at

let event_edge = function Remove { edge; _ } | Add { edge; _ } -> edge

type contract = { protected_edges : bool array; window : int }

type t =
  | No_churn
  | Spec of {
      plan_of : int -> plan;
      script : event list;
      seed : int;
      contract : contract option;
    }

let none = No_churn

let uniform p ~seed =
  let p = validate p in
  if is_stable p then No_churn
  else Spec { plan_of = (fun _ -> p); script = []; seed; contract = None }

let per_edge f ~seed =
  Spec
    { plan_of = (fun e -> validate (f e)); script = []; seed; contract = None }

let validate_script events =
  let adds = Hashtbl.create 4 in
  List.iter
    (function
      | Add { edge; at } ->
          if at < 1 then invalid_arg "Churn.script: add at must be >= 1";
          if Hashtbl.mem adds edge then
            invalid_arg "Churn.script: at most one add per edge";
          Hashtbl.add adds edge ()
      | Remove { at; down_for; _ } ->
          if at < 1 then invalid_arg "Churn.script: remove at must be >= 1";
          if down_for < 0 then
            invalid_arg "Churn.script: down_for must be >= 0")
    events;
  events

let script events =
  match events with
  | [] -> No_churn
  | _ ->
      Spec
        {
          plan_of = (fun _ -> stable);
          script = validate_script events;
          seed = 0;
          contract = None;
        }

let is_none = function No_churn -> true | Spec _ -> false

(* {1 T-interval connectivity} *)

(* The stable spanning subgraph the T-interval contract protects: a BFS
   out-arborescence from [s] (every reachable vertex keeps one live path
   from the root) plus, for every vertex with a path to [t], one out-edge
   on a shortest such path (the terminal stays fed).  Vertices [s] cannot
   reach, or that cannot reach [t], contribute nothing — the contract
   protects exactly what the coverage and termination obligations need. *)
let skeleton g =
  let n = Digraph.n_vertices g in
  let ne = Digraph.n_edges g in
  let prot = Array.make (Stdlib.max ne 1) false in
  (* BFS tree from s over out-edges. *)
  let seen = Array.make n false in
  let q = Queue.create () in
  let s = Digraph.source g in
  seen.(s) <- true;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    for j = 0 to Digraph.out_degree g u - 1 do
      let v, _ = Digraph.out_port_target_port g u j in
      if not seen.(v) then begin
        seen.(v) <- true;
        prot.(Digraph.edge_index g u j) <- true;
        Queue.add v q
      end
    done
  done;
  (* Distance to t over reversed edges, then one shortest out-step each. *)
  let t = Digraph.terminal g in
  let dist = Array.make n max_int in
  let preds = Array.make n [] in
  List.iter
    (fun u ->
      for j = 0 to Digraph.out_degree g u - 1 do
        let v, _ = Digraph.out_port_target_port g u j in
        preds.(v) <- u :: preds.(v)
      done)
    (Digraph.vertices g);
  dist.(t) <- 0;
  Queue.add t q;
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    List.iter
      (fun u ->
        if dist.(u) = max_int then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u q
        end)
      preds.(v)
  done;
  List.iter
    (fun u ->
      if u <> t && dist.(u) < max_int then begin
        let found = ref false in
        for j = 0 to Digraph.out_degree g u - 1 do
          if not !found then begin
            let v, _ = Digraph.out_port_target_port g u j in
            if dist.(v) = dist.(u) - 1 then begin
              prot.(Digraph.edge_index g u j) <- true;
              found := true
            end
          end
        done
      end)
    (Digraph.vertices g);
  prot

let with_contract ~t_interval g spec =
  if t_interval < 1 then invalid_arg "Churn: t_interval must be >= 1";
  match spec with
  | No_churn -> No_churn
  | Spec s ->
      Spec
        {
          s with
          contract = Some { protected_edges = skeleton g; window = t_interval };
        }

(* Clamp the adversary to honor the contract: skeleton edges are never
   churned, and every outage on a non-skeleton edge is shorter than
   [t_interval] consecutive offers (a removal swallows [1 + down_for]
   offers, so [down_for <= t_interval - 2]; an add leaves [at - 1] offers
   dead, so [at <= t_interval]).  With [t_interval = 1] no offer may ever
   find an edge dead, i.e. no churn at all. *)
let constrain ~t_interval g spec =
  if t_interval < 1 then invalid_arg "Churn: t_interval must be >= 1";
  match spec with
  | No_churn -> No_churn
  | Spec s ->
      let prot = skeleton g in
      let protected_ e = e >= 0 && e < Array.length prot && prot.(e) in
      let cap_down = t_interval - 2 in
      let script =
        List.filter_map
          (fun ev ->
            if protected_ (event_edge ev) then None
            else
              match ev with
              | Remove { edge; at; down_for } ->
                  if cap_down < 0 then None
                  else
                    Some (Remove { edge; at; down_for = Stdlib.min down_for cap_down })
              | Add { edge; at } ->
                  if t_interval = 1 then None
                  else Some (Add { edge; at = Stdlib.min at t_interval }))
          s.script
      in
      let plan_of e =
        let p = s.plan_of e in
        if protected_ e || cap_down < 0 then stable
        else { p with max_downtime = Stdlib.min p.max_downtime cap_down }
      in
      let all_stable =
        script = []
        &&
        let ne = Digraph.n_edges g in
        let rec go e = e >= ne || (is_stable (plan_of e) && go (e + 1)) in
        go 0
      in
      if all_stable then No_churn
      else
        Spec
          {
            plan_of;
            script;
            seed = s.seed;
            contract = Some { protected_edges = prot; window = t_interval };
          }

let of_dynamic events =
  script
    (List.map
       (fun (d : Digraph.Families.dyn_event) ->
         match d.Digraph.Families.de_down_for with
         | Some down_for ->
             remove_event ~edge:d.de_edge ~at:d.de_at ~down_for ()
         | None -> add_event ~edge:d.de_edge ~at:d.de_at)
       events)

(* {1 Per-run instances} *)

type fate =
  | Cross
  | Removed of int
  | Down
  | Back of [ `Add | `Heal ]

module Instance = struct
  type churn = t

  type estate =
    | Up
    | Dead of { mutable left : int; back : [ `Add | `Heal ] }
        (** Offers still to swallow before the edge comes back. *)

  type edge_state = {
    prng : Prng.t;
    plan : plan;
    mutable up_count : int;  (** Offers consumed while up, 1-based. *)
    mutable status : estate;
    mutable pending : event list;  (** Scripted removals, by [at]. *)
  }

  type t = {
    spec : churn;
    edges : (int, edge_state) Hashtbl.t;
    mutable adds : int;
    mutable removes : int;
    mutable heals : int;
    mutable lost : int;
    mutable violations : int;
  }

  let start spec =
    {
      spec;
      edges = Hashtbl.create 16;
      adds = 0;
      removes = 0;
      heals = 0;
      lost = 0;
      violations = 0;
    }

  let contract_of inst =
    match inst.spec with No_churn -> None | Spec { contract; _ } -> contract

  (* One violation per outage, charged when the outage begins: either the
     outage touches a protected (skeleton) edge at all, or it spans at
     least [window] consecutive offers — both break "some stable spanning
     subgraph is live throughout every window of [window] deliveries". *)
  let note_outage inst ~edge ~dead_offers =
    match contract_of inst with
    | None -> ()
    | Some c ->
        let protected_ =
          edge >= 0 && edge < Array.length c.protected_edges
          && c.protected_edges.(edge)
        in
        if protected_ || dead_offers >= c.window then
          inst.violations <- inst.violations + 1

  (* Each edge draws from its own PRNG stream derived from (seed, edge), and
     its add/remove clock counts only offers on that edge — the same
     locality that lets the sharded engine's per-domain instances agree
     with the sequential one (all of edge [e]'s deliveries happen in the
     shard owning its target vertex). *)
  let edge_state inst ~edge =
    match Hashtbl.find_opt inst.edges edge with
    | Some st -> st
    | None ->
        let seed, plan_of, script =
          match inst.spec with
          | No_churn -> invalid_arg "Churn.Instance: no churn"
          | Spec { seed; plan_of; script; _ } -> (seed, plan_of, script)
        in
        let removals =
          List.sort
            (fun a b ->
              match (a, b) with
              | Remove ra, Remove rb -> compare ra.at rb.at
              | _ -> 0)
            (List.filter
               (function
                 | Remove { edge = e; _ } -> e = edge
                 | Add _ -> false)
               script)
        in
        let added_at =
          List.find_map
            (function
              | Add { edge = e; at } when e = edge -> Some at
              | _ -> None)
            script
        in
        let status =
          match added_at with
          | None -> Up
          | Some at when at <= 1 ->
              (* Degenerate add: present from the first offer on. *)
              inst.adds <- inst.adds + 1;
              Up
          | Some at ->
              note_outage inst ~edge ~dead_offers:(at - 1);
              Dead { left = at - 1; back = `Add }
        in
        let st =
          {
            prng = Prng.create (seed lxor ((edge + 1) * 0x6C8E9CF5));
            plan = plan_of edge;
            up_count = 0;
            status;
            pending = removals;
          }
        in
        Hashtbl.add inst.edges edge st;
        st

  let fire_remove inst st ~edge down_for =
    inst.removes <- inst.removes + 1;
    inst.lost <- inst.lost + 1;
    note_outage inst ~edge ~dead_offers:(down_for + 1);
    if down_for = 0 then begin
      (* The edge was gone only for this one offer; it is back before the
         next one, which counts as an immediate heal. *)
      inst.heals <- inst.heals + 1;
      st.status <- Up
    end
    else st.status <- Dead { left = down_for; back = `Heal };
    Removed down_for

  let on_offer inst ~edge =
    match inst.spec with
    | No_churn -> Cross
    | Spec _ -> (
        let st = edge_state inst ~edge in
        match st.status with
        | Dead d ->
            inst.lost <- inst.lost + 1;
            d.left <- d.left - 1;
            if d.left <= 0 then begin
              st.status <- Up;
              (match d.back with
              | `Add -> inst.adds <- inst.adds + 1
              | `Heal -> inst.heals <- inst.heals + 1);
              Back d.back
            end
            else Down
        | Up -> (
            st.up_count <- st.up_count + 1;
            (* [<=], not [=]: a removal whose [at] slipped past (duplicate
               [at]s on one edge, or an [at] consumed while the edge was
               down) fires on the next up offer instead of jamming the
               queue. *)
            match st.pending with
            | Remove { at; down_for; _ } :: rest when at <= st.up_count ->
                st.pending <- rest;
                fire_remove inst st ~edge down_for
            | _ ->
                let p = st.plan in
                if p.remove > 0.0 && Prng.chance st.prng p.remove then
                  let down_for =
                    if p.max_downtime = 0 then 0
                    else Prng.int st.prng (p.max_downtime + 1)
                  in
                  fire_remove inst st ~edge down_for
                else Cross))

  let is_up inst ~edge =
    match inst.spec with
    | No_churn -> true
    | Spec _ -> (
        match Hashtbl.find_opt inst.edges edge with
        | Some st -> st.status = Up
        | None -> true)

  let adds inst = inst.adds
  let removes inst = inst.removes
  let heals inst = inst.heals
  let lost inst = inst.lost
  let window_violations inst = inst.violations
end
