(** The self-healing watchdog layer of the sequential engine.

    The paper's channels deliver exactly once and its processes never die;
    {!Faults} and {!Vfaults} break both assumptions.  A supervisor restores
    liveness without breaking the anonymity model — it acts only on
    information the runtime already has (delivery counts, pool emptiness,
    per-vertex state), never on vertex identities the protocols could see:

    - {e checkpointing}: every [checkpoint_every] deliveries processed by a
      vertex, the engine snapshots that vertex's state; a [Restore] crash
      resumes from the snapshot instead of [pi0].  With the default cadence
      of 1 the snapshot is the state after the last {e completed} receive,
      so a restore loses only the deliveries consumed while down — a pure
      commodity {e deficit}, never an excess, which is why checkpointed
      recovery cannot manufacture false termination (an excess could tip
      the terminal's linear cut past 1).  Coarser cadences roll emissions
      back and are genuinely dangerous — measurably so under {!Chaos};

    - {e retransmission}: when the pool runs dry but the terminal is not
      accepting, the engine re-sends the last message emitted on each edge
      whose source vertex is currently healthy, holding the copies back by
      an exponential-backoff-plus-jitter delay ({!backoff}) drawn from the
      config's PRNG seed.  At most [max_retries] rounds — retransmission is
      feedback-free repetition, the only repair available when receivers
      cannot NACK, so it heals losses but cannot distinguish "everything
      arrived" from "the rest is unreachable";

    - retransmitted copies traverse the {e same} fault plans as originals
      and are deduplicated by a {!Redundant}-wrapped receiver (same wire
      encoding), so supervision composes with, rather than replaces, the
      redundancy layer.

    On the fault-free path the supervisor costs nothing until the first
    quiescence-without-termination: terminating protocols never trigger a
    retransmission, and checkpointing copies one state reference per
    receive.  E17 prices this at well under the 10% delivery budget. *)

type config = {
  checkpoint_every : int;  (** Per-vertex delivery cadence; [>= 1]. *)
  max_retries : int;  (** Retransmission rounds before giving up. *)
  base_timeout : int;
      (** Base hold, in delivery steps; round [r] waits [base * 2^r]. *)
  jitter : bool;  (** Add [Uniform{0..base-1}] extra hold per copy. *)
  seed : int;  (** Seed of the supervisor's own PRNG stream. *)
}

val config :
  ?checkpoint_every:int ->
  ?max_retries:int ->
  ?base_timeout:int ->
  ?jitter:bool ->
  ?seed:int ->
  unit ->
  config
(** Defaults: cadence 1, 4 retries, base timeout 8, jitter on, seed 0. *)

val default : config

val backoff : config -> Prng.t -> round:int -> int
(** Hold time for retransmission round [round] (0-based), jitter included;
    the exponent saturates at 2^20 to stay in integer range. *)
