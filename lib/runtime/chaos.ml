type fault =
  | Kill_edge of int
  | Crash_vertex of Vfaults.crash_event
  | Churn_edge of Churn.event

let describe_fault = function
  | Kill_edge e -> Printf.sprintf "kill-edge:%d" e
  | Crash_vertex c ->
      Printf.sprintf "crash:%d@%d/%d/%s" c.Vfaults.cv c.at c.downtime
        (Vfaults.describe_recovery c.c_recovery)
  | Churn_edge e -> Churn.describe_event e

let canonical_key fs =
  String.concat ";" (List.sort compare (List.map describe_fault fs))

let compile fs =
  let killed =
    List.filter_map (function Kill_edge e -> Some e | _ -> None) fs
  in
  let crashes =
    List.filter_map (function Crash_vertex c -> Some c | _ -> None) fs
  in
  (* [Churn.script] admits at most one [Add] per edge; random trials may
     draw several, so keep the first and let shrinking do the rest. *)
  let churn_events =
    let seen_add = Hashtbl.create 4 in
    List.filter_map
      (function
        | Churn_edge (Churn.Add { edge; _ } as e) ->
            if Hashtbl.mem seen_add edge then None
            else begin
              Hashtbl.add seen_add edge ();
              Some e
            end
        | Churn_edge e -> Some e
        | _ -> None)
      fs
  in
  let faults =
    if killed = [] then Faults.none
    else
      Faults.per_edge
        (fun e ->
          if List.mem e killed then Faults.plan ~kill:1.0 ()
          else Faults.reliable)
        ~seed:0
  in
  (faults, Vfaults.script crashes, Churn.script churn_events)

(* The degraded coverage obligation: reachable from [s] through live edges
   and vertices that never crash-stop.  A crash-stopped vertex is excused
   (it may die before completing a single receive, and nothing can heal a
   permanently deaf process) and conservatively assumed never to forward —
   an under-approximation of what a run might still cover, so [required]
   vertices are ones {e every} correct execution must reach. *)
let required g fs =
  let n = Digraph.n_vertices g in
  (* A churned-in edge ([Add]) is absent until traffic heals it, and no
     correct execution may depend on that happening — treat it like a
     killed edge for the obligation.  A churned-out edge ([Remove]) heals
     after a bounded number of offers and excuses nothing. *)
  let killed =
    List.filter_map
      (function
        | Kill_edge e -> Some e
        | Churn_edge (Churn.Add { edge; _ }) -> Some edge
        | _ -> None)
      fs
  in
  let stops = Array.make n false in
  List.iter
    (function
      | Crash_vertex c when c.Vfaults.c_recovery = Vfaults.Stop ->
          if c.cv >= 0 && c.cv < n then stops.(c.cv) <- true
      | _ -> ())
    fs;
  let req = Array.make n false in
  let s = Digraph.source g in
  let queue = Queue.create () in
  req.(s) <- true;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.take queue in
    if not stops.(u) || u = s then
      for j = 0 to Digraph.out_degree g u - 1 do
        let e = Digraph.edge_index g u j in
        if not (List.mem e killed) then begin
          let v, _ = Digraph.out_port_target_port g u j in
          if not req.(v) then begin
            req.(v) <- true;
            Queue.add v queue
          end
        end
      done
  done;
  (* Excuse crash-stopped vertices from the obligation itself. *)
  for v = 0 to n - 1 do
    if stops.(v) then req.(v) <- false
  done;
  req

(* {1 Runners} *)

type summary = {
  outcome : Engine.outcome;
  visited : bool array;
  deliveries : int;
  total_bits : int;
  fault_stats : Engine.fault_stats;
  vfault_stats : Engine.vertex_fault_stats;
  churn_stats : Engine.churn_stats;
  schedule : int list;
}

type runner = {
  r_name : string;
  run :
    scheduler:Scheduler.t ->
    record:bool ->
    faults:Faults.t ->
    vfaults:Vfaults.t ->
    churn:Churn.t ->
    supervisor:Supervisor.config option ->
    step_limit:int ->
    Digraph.t ->
    summary;
}

module Of_protocol (P : Protocol_intf.PROTOCOL) = struct
  module E = Engine.Make (P)

  let runner ?name () =
    {
      r_name = (match name with Some n -> n | None -> P.name);
      run =
        (fun ~scheduler ~record ~faults ~vfaults ~churn ~supervisor ~step_limit
             g ->
          let popped = ref [] in
          let on_pop = if record then Some (fun s -> popped := s :: !popped) else None in
          let r =
            E.run ~scheduler ~faults ~vfaults ~churn ?supervisor ~step_limit
              ?on_pop g
          in
          {
            outcome = r.outcome;
            visited = r.visited;
            deliveries = r.deliveries;
            total_bits = r.total_bits;
            fault_stats = r.fault_stats;
            vfault_stats = r.vfault_stats;
            churn_stats = r.churn_stats;
            schedule = List.rev !popped;
          });
    }
end

(* {1 Search} *)

type config = {
  budget : int;
  max_faults : int;
  seed : int;
  p_edge : float;
  recoveries : Vfaults.recovery list;
  max_at : int;
  max_downtime : int;
  step_limit : int;
  supervisor : Supervisor.config option;
  p_churn : float;
  churn_t : int option;
}

let config ?(budget = 500) ?(max_faults = 4) ?(seed = 0) ?(p_edge = 0.5)
    ?(recoveries = [ Vfaults.Stop; Vfaults.Amnesia; Vfaults.Restore ])
    ?(max_at = 6) ?(max_downtime = 4) ?(step_limit = 200_000) ?supervisor
    ?(p_churn = 0.0) ?churn_t () =
  if budget < 1 then invalid_arg "Chaos.config: budget must be >= 1";
  if max_faults < 1 then invalid_arg "Chaos.config: max_faults must be >= 1";
  if recoveries = [] then invalid_arg "Chaos.config: recoveries must be non-empty";
  if max_at < 1 then invalid_arg "Chaos.config: max_at must be >= 1";
  if max_downtime < 1 then invalid_arg "Chaos.config: max_downtime must be >= 1";
  if p_churn < 0.0 || p_churn > 1.0 then
    invalid_arg "Chaos.config: p_churn must be in [0,1]";
  (match churn_t with
  | Some t when t < 1 -> invalid_arg "Chaos.config: churn_t must be >= 1"
  | _ -> ());
  {
    budget;
    max_faults;
    seed;
    p_edge;
    recoveries;
    max_at;
    max_downtime;
    step_limit;
    supervisor;
    p_churn;
    churn_t;
  }

type kind = Unsound | Starved | Livelock

let describe_kind = function
  | Unsound -> "unsound"
  | Starved -> "starved"
  | Livelock -> "livelock"

type witness = {
  w_runner : string;
  w_graph : string;
  w_kind : kind;
  w_trial : int;
  w_original_size : int;
  w_faults : fault list;
  w_missing : int list;
  w_outcome : Engine.outcome;
  w_deliveries : int;
  w_total_bits : int;
  w_schedule : int list;
}

type result = {
  trials_run : int;
  hits : int;
  duplicates : int;
  witnesses : witness list;
  unsound : int;
  starved : int;
  livelocked : int;
}

(* One atom, drawn from the trial's PRNG stream.  The source is immortal by
   construction (it never receives), so it is never a crash target.  The
   churn coin is drawn only when [p_churn > 0], so configs without churn
   consume exactly the PRNG stream they always did and existing seeds keep
   their witnesses byte-for-byte. *)
let gen_fault cfg prng g =
  let ne = Digraph.n_edges g in
  let n = Digraph.n_vertices g in
  let s = Digraph.source g in
  if cfg.p_churn > 0.0 && ne > 0 && Prng.chance prng cfg.p_churn then begin
    let edge = Prng.int prng ne in
    let at = 1 + Prng.int prng cfg.max_at in
    if Prng.chance prng 0.25 then Churn_edge (Churn.add_event ~edge ~at)
    else
      Churn_edge
        (Churn.remove_event ~edge ~at
           ~down_for:(Prng.int prng (cfg.max_downtime + 1))
           ())
  end
  else if (ne > 0 && Prng.chance prng cfg.p_edge) || n <= 1 then
    Kill_edge (Prng.int prng ne)
  else begin
    let v = ref (Prng.int prng n) in
    while !v = s do
      v := Prng.int prng n
    done;
    Crash_vertex
      (Vfaults.event ~vertex:!v ~at:(1 + Prng.int prng cfg.max_at)
         ~downtime:(1 + Prng.int prng cfg.max_downtime)
         ~recovery:(Prng.pick_list prng cfg.recoveries)
         ())
  end

let trials cfg ~graph =
  Array.init cfg.budget (fun i ->
      (* A stream per trial, split off (seed, trial), so evaluating trials
         in parallel or in any order draws identical fault sets. *)
      let prng = Prng.create (cfg.seed lxor ((i + 1) * 0x9E3779B9)) in
      let size = 1 + Prng.int prng cfg.max_faults in
      List.init size (fun _ -> gen_fault cfg prng graph))

(* The T-interval contract, when configured, is installed for accounting
   only ([with_contract], not [constrain]): fates are untouched, so replays
   stay byte-identical, while [churn_stats.window_violations] reports how
   badly the witness breaches the contract. *)
let compiled_churn cfg ~graph churn =
  match cfg.churn_t with
  | None -> churn
  | Some t -> Churn.with_contract ~t_interval:t graph churn

let eval_trial cfg r ~graph fs =
  let faults, vfaults, churn = compile fs in
  let churn = compiled_churn cfg ~graph churn in
  let s =
    r.run ~scheduler:Scheduler.Fifo ~record:false ~faults ~vfaults ~churn
      ~supervisor:cfg.supervisor ~step_limit:cfg.step_limit graph
  in
  let req = required graph fs in
  let missing =
    List.filter
      (fun v -> req.(v) && not s.visited.(v))
      (Digraph.vertices graph)
  in
  if missing = [] then
    (* Full coverage but the run never stopped spinning: the
       amnesiac-flooding breakage class (a churned-in back edge closes a
       cycle and tokens circulate forever). *)
    if s.outcome = Engine.Step_limit then Some (Livelock, []) else None
  else Some ((if s.outcome = Engine.Terminated then Unsound else Starved), missing)

(* Delta-debugging shrink preserving the violation kind: bisection passes
   (drop either half while it still fails) to a fixpoint, then single-atom
   removal to a fixpoint, then per-crash parameter lowering (downtime to 1,
   crash position toward 1) — each accepted only if the reduced set still
   produces the same kind. *)
let shrink cfg r ~graph kind fs =
  let fails fs =
    match eval_trial cfg r ~graph fs with
    | Some (k, _) -> k = kind
    | None -> false
  in
  let rec halve fs =
    let len = List.length fs in
    if len <= 1 then fs
    else begin
      let half = len / 2 in
      let front = List.filteri (fun i _ -> i < half) fs in
      let back = List.filteri (fun i _ -> i >= half) fs in
      if fails front then halve front
      else if fails back then halve back
      else fs
    end
  in
  let rec drop_one fs =
    let len = List.length fs in
    let rec try_at i =
      if i >= len then fs
      else begin
        let without = List.filteri (fun j _ -> j <> i) fs in
        if fails without then drop_one without else try_at (i + 1)
      end
    in
    if len <= 1 then fs else try_at 0
  in
  let lower fs =
    List.mapi
      (fun i f ->
        match f with
        | Kill_edge _ -> f
        | Crash_vertex c ->
            let try_with c' =
              let fs' = List.mapi (fun j f' -> if j = i then Crash_vertex c' else f') fs in
              if fails fs' then Some c' else None
            in
            let c =
              if c.Vfaults.downtime > 1 then
                match try_with { c with Vfaults.downtime = 1 } with
                | Some c' -> c'
                | None -> c
              else c
            in
            let c =
              if c.Vfaults.at > 1 then
                match try_with { c with Vfaults.at = 1 } with
                | Some c' -> c'
                | None -> c
              else c
            in
            Crash_vertex c
        | Churn_edge ev ->
            let try_with ev' =
              let fs' =
                List.mapi (fun j f' -> if j = i then Churn_edge ev' else f') fs
              in
              if fails fs' then Some ev' else None
            in
            let ev =
              match ev with
              | Churn.Remove { edge; at; down_for } when down_for > 0 -> (
                  match try_with (Churn.Remove { edge; at; down_for = 0 }) with
                  | Some ev' -> ev'
                  | None -> ev)
              | _ -> ev
            in
            let ev =
              match ev with
              | Churn.Remove { edge; at; down_for } when at > 1 -> (
                  match try_with (Churn.Remove { edge; at = 1; down_for }) with
                  | Some ev' -> ev'
                  | None -> ev)
              | Churn.Add { edge; at } when at > 1 -> (
                  match try_with (Churn.Add { edge; at = 1 }) with
                  | Some ev' -> ev'
                  | None -> ev)
              | _ -> ev
            in
            Churn_edge ev)
      fs
  in
  lower (drop_one (halve fs))

let run ?(map = fun f a -> Array.map f a) cfg ~runners ~graphs =
  let trials_run = ref 0 in
  let hits = ref 0 in
  let duplicates = ref 0 in
  let witnesses = ref [] in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      List.iter
        (fun (gc : Campaign.graph_case) ->
          let graph = gc.Campaign.build ~seed:cfg.seed in
          let sets = trials cfg ~graph in
          let verdicts = map (eval_trial cfg r ~graph) sets in
          trials_run := !trials_run + Array.length sets;
          Array.iteri
            (fun i verdict ->
              match verdict with
              | None -> ()
              | Some (kind, _missing) -> (
                  incr hits;
                  let shrunk = shrink cfg r ~graph kind sets.(i) in
                  (* Dedup by the canonical key of the {e shrunk} set: many
                     random supersets collapse onto one minimal core, and
                     re-witnessing it would just repeat the replay run. *)
                  let key =
                    r.r_name ^ "|" ^ gc.Campaign.g_name ^ "|"
                    ^ describe_kind kind ^ "|" ^ canonical_key shrunk
                  in
                  if Hashtbl.mem seen key then incr duplicates
                  else begin
                    Hashtbl.add seen key ();
                    let faults, vfaults, churn = compile shrunk in
                    let churn = compiled_churn cfg ~graph churn in
                    let s =
                      r.run ~scheduler:Scheduler.Fifo ~record:true ~faults
                        ~vfaults ~churn ~supervisor:cfg.supervisor
                        ~step_limit:cfg.step_limit graph
                    in
                    let req = required graph shrunk in
                    let missing =
                      List.filter
                        (fun v -> req.(v) && not s.visited.(v))
                        (Digraph.vertices graph)
                    in
                    witnesses :=
                      {
                        w_runner = r.r_name;
                        w_graph = gc.Campaign.g_name;
                        w_kind = kind;
                        w_trial = i;
                        w_original_size = List.length sets.(i);
                        w_faults = shrunk;
                        w_missing = missing;
                        w_outcome = s.outcome;
                        w_deliveries = s.deliveries;
                        w_total_bits = s.total_bits;
                        w_schedule = s.schedule;
                      }
                      :: !witnesses
                  end))
            verdicts)
        graphs)
    runners;
  let witnesses = List.rev !witnesses in
  {
    trials_run = !trials_run;
    hits = !hits;
    duplicates = !duplicates;
    witnesses;
    unsound = List.length (List.filter (fun w -> w.w_kind = Unsound) witnesses);
    starved = List.length (List.filter (fun w -> w.w_kind = Starved) witnesses);
    livelocked =
      List.length (List.filter (fun w -> w.w_kind = Livelock) witnesses);
  }

let replay cfg r (gc : Campaign.graph_case) w =
  let graph = gc.Campaign.build ~seed:cfg.seed in
  let faults, vfaults, churn = compile w.w_faults in
  let churn = compiled_churn cfg ~graph churn in
  r.run
    ~scheduler:(Scheduler.Replay w.w_schedule)
    ~record:false ~faults ~vfaults ~churn ~supervisor:cfg.supervisor
    ~step_limit:cfg.step_limit graph

let confirms w (s : summary) =
  let missing_of visited =
    (* The witness's graph is not at hand here; compare against the
       recorded missing set by re-deriving it from the replay's visited
       flags and the witness's own obligation. *)
    List.filter (fun v -> not visited.(v)) w.w_missing
  in
  s.outcome = w.w_outcome
  && s.deliveries = w.w_deliveries
  && s.total_bits = w.w_total_bits
  && missing_of s.visited = w.w_missing

(* {1 JSON} *)

let buf_fault b f =
  match f with
  | Kill_edge e ->
      Buffer.add_string b (Printf.sprintf "{\"kind\":\"kill_edge\",\"edge\":%d}" e)
  | Crash_vertex c ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"kind\":\"crash\",\"vertex\":%d,\"at\":%d,\"downtime\":%d,\"recovery\":\"%s\"}"
           c.Vfaults.cv c.at c.downtime
           (Vfaults.describe_recovery c.c_recovery))
  | Churn_edge (Churn.Remove { edge; at; down_for }) ->
      Buffer.add_string b
        (Printf.sprintf
           "{\"kind\":\"churn_remove\",\"edge\":%d,\"at\":%d,\"down_for\":%d}"
           edge at down_for)
  | Churn_edge (Churn.Add { edge; at }) ->
      Buffer.add_string b
        (Printf.sprintf "{\"kind\":\"churn_add\",\"edge\":%d,\"at\":%d}" edge at)

let buf_witness b w =
  Buffer.add_string b "{\"runner\":";
  Json.buf_string b w.w_runner;
  Buffer.add_string b ",\"graph\":";
  Json.buf_string b w.w_graph;
  Buffer.add_string b
    (Printf.sprintf ",\"kind\":\"%s\",\"trial\":%d,\"original_size\":%d,\"faults\":"
       (describe_kind w.w_kind) w.w_trial w.w_original_size);
  Json.buf_list b buf_fault w.w_faults;
  Buffer.add_string b ",\"missing\":";
  Json.buf_int_list b w.w_missing;
  Buffer.add_string b
    (Printf.sprintf ",\"outcome\":\"%s\",\"deliveries\":%d,\"total_bits\":%d,\"schedule\":"
       (match w.w_outcome with
       | Engine.Terminated -> "terminated"
       | Engine.Quiescent -> "quiescent"
       | Engine.Step_limit -> "step_limit"
       | Engine.Cancelled -> "cancelled")
       w.w_deliveries w.w_total_bits);
  Json.buf_int_list b w.w_schedule;
  Buffer.add_char b '}'

let to_json res =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"trials\":%d,\"hits\":%d,\"duplicates\":%d,\"unsound\":%d,\"starved\":%d,\"livelocked\":%d,\"witnesses\":"
       res.trials_run res.hits res.duplicates res.unsound res.starved
       res.livelocked);
  Json.buf_list b buf_witness res.witnesses;
  Buffer.add_char b '}';
  Buffer.contents b
