let buf_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let buf_list b f xs =
  Buffer.add_char b '[';
  List.iteri
    (fun i x ->
      if i > 0 then Buffer.add_char b ',';
      f b x)
    xs;
  Buffer.add_char b ']'

let buf_int_list b xs =
  buf_list b (fun b i -> Buffer.add_string b (string_of_int i)) xs

let escape s =
  let b = Buffer.create (String.length s + 2) in
  buf_string b s;
  Buffer.contents b
