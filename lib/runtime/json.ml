include Obs.Json
