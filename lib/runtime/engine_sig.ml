(** The run signature shared by every sequential engine implementation.

    {!Engine.Make} (the classic heap-allocating executor) and
    [Flatcore.Engine.Make] (the CSR + arena flat executor) both produce a
    module of this shape, so call sites — witness replays, the serving
    runner, the CLI — can take the engine as a first-class module and stay
    agnostic of which implementation runs.  The contract is strict: for
    equal inputs every field of the returned {!Engine.report} (and every
    deterministic [engine.*] Obs counter) must be identical across
    implementations — the flat engine is an {e optimization}, never a
    different semantics.  [test/test_flatcore.ml] enforces this
    byte-for-byte. *)

module type S = sig
  type state
  type message

  val run :
    ?scheduler:Scheduler.t ->
    ?payload_bits:int ->
    ?step_limit:int ->
    ?faults:Faults.t ->
    ?vfaults:Vfaults.t ->
    ?churn:Churn.t ->
    ?supervisor:Supervisor.config ->
    ?verify_codec:bool ->
    ?stop:(unit -> bool) ->
    ?obs:Obs.t ->
    ?lineage:Obs.Lineage.t ->
    ?on_deliver:(Engine.event -> message -> unit) ->
    ?on_pop:(int -> unit) ->
    ?on_undelivered:(message -> unit) ->
    Digraph.t ->
    state Engine.report
end
