(** Per-vertex (process) fault plans: crashes, restarts and stutter.

    {!Faults} makes the {e channels} unreliable; this module makes the
    {e processes} unreliable — the churn regime of anonymous dynamic
    broadcast (Parzych & Daymude's impossibility results, amnesiac
    flooding), where the paper's linear-cut termination machinery is most
    fragile.  A vertex may

    - {e crash-stop}: die permanently, swallowing every later delivery;
    - {e crash-restart with amnesia}: lose its whole protocol state (reset
      to [pi0]) and its visited flag — it no longer holds the broadcast
      payload and must be re-reached.  When a {!Supervisor} is armed its
      per-vertex checkpoints are durable storage, so amnesia degrades to a
      restore-from-checkpoint (this is the supervisor's soundness
      guarantee: state loss after a vertex has forwarded its flow is
      invisible to the paper's conservation-based termination machinery);
    - {e crash-restart from a checkpoint}: resume from the engine's last
      per-vertex checkpoint (see {!Supervisor}); only the deliveries
      processed since the checkpoint are lost;
    - {e stutter}: silently swallow a delivery while otherwise healthy.

    Downtime is measured in {e deliveries addressed to the vertex}: a down
    vertex consumes (and loses) the next [downtime] messages aimed at it,
    then restarts.  This clock is local to the vertex, which keeps scripted
    fates identical between the sequential engine and the sharded one.

    The source [s] never receives, so it never crashes — the root is
    immortal by construction (the paper's model: [s] initiates, everything
    else reacts).

    Two specification styles compose into one {!t}:

    - {e probabilistic plans} ({!uniform} / {!per_vertex}): per-delivery
      crash and stutter coins drawn from per-vertex PRNG streams derived
      from the seed, exactly like {!Faults} edge streams — reproducible and
      shard-independent;
    - {e scripts} ({!script}): deterministic crash events "vertex [v]
      crashes at its [at]-th offered delivery", the representation the
      {!Chaos} search minimizes. *)

type recovery =
  | Stop  (** Crash-stop: permanently dead. *)
  | Amnesia  (** Restart from [pi0] with full state loss. *)
  | Restore  (** Restart from the engine's last checkpoint. *)

val describe_recovery : recovery -> string

type plan = {
  crash : float;  (** Per-delivery crash probability, in [\[0,1\]]. *)
  max_downtime : int;
      (** Downtime per crash is [Uniform{1..max_downtime}] deliveries; must
          be [>= 1].  Ignored for [Stop]. *)
  recovery : recovery;
  stutter : float;  (** Per-delivery silent-swallow probability. *)
}

val immortal : plan
(** The all-zero plan: the paper's reliable process. *)

val plan :
  ?crash:float ->
  ?max_downtime:int ->
  ?recovery:recovery ->
  ?stutter:float ->
  unit ->
  plan
(** [immortal] with fields overridden; validates ranges. *)

type crash_event = {
  cv : int;  (** Vertex. *)
  at : int;  (** Crash at its [at]-th delivery offered while up (1-based). *)
  downtime : int;  (** Deliveries swallowed before restart; [>= 1]. *)
  c_recovery : recovery;
}

val event :
  vertex:int -> at:int -> ?downtime:int -> ?recovery:recovery -> unit ->
  crash_event
(** Defaults: [downtime = 1], [recovery = Amnesia]. *)

type t
(** A vertex-fault specification; start a fresh {!Instance} per run. *)

val none : t
(** No vertex faults; the engines take a fast path. *)

val uniform : plan -> seed:int -> t
val per_vertex : (int -> plan) -> seed:int -> t

val script : crash_event list -> t
(** Deterministic crashes only — the {!Chaos} witness representation.
    Multiple events per vertex fire in [at] order. *)

val is_none : t -> bool

type fate =
  | Deliver  (** Process normally. *)
  | Stutter  (** Swallow this delivery; vertex stays healthy. *)
  | Down_drop  (** Swallowed because the vertex is down or stopped. *)
  | Crash of recovery * int
      (** The vertex crashes {e on} this delivery (which is lost); the
          engine applies the recovery's state change and the instance keeps
          it down for the given number of subsequent deliveries. *)

(** Mutable per-run state: per-vertex PRNG streams, up/down status and the
    fault counters. *)
module Instance : sig
  type vfaults := t
  type t

  val start : vfaults -> t

  val on_deliver : t -> vertex:int -> fate
  (** The fate of one delivery addressed to [vertex]; advances that vertex's
      clocks and updates the counters. *)

  val is_up : t -> vertex:int -> bool
  (** Whether the vertex is currently healthy (used by the supervisor to
      pick retransmission sources). *)

  val stopped : t -> int list
  (** Vertices crash-stopped so far, sorted. *)

  val crashes : t -> int
  val restarts : t -> int

  val down_drops : t -> int
  (** Deliveries swallowed while down or stopped (the crashing delivery
      itself is counted under [crashes], not here). *)

  val stuttered : t -> int
end
