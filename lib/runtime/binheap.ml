type ('k, 'v) t = { mutable arr : ('k * 'v) array; mutable len : int }

let create () = { arr = [||]; len = 0 }

let length h = h.len
let is_empty h = h.len = 0

let swap h i j =
  let t = h.arr.(i) in
  h.arr.(i) <- h.arr.(j);
  h.arr.(j) <- t

let key h i = fst h.arr.(i)

let push h k v =
  if h.len = Array.length h.arr then begin
    let cap = Stdlib.max 16 (2 * h.len) in
    let bigger = Array.make cap (k, v) in
    Array.blit h.arr 0 bigger 0 h.len;
    h.arr <- bigger
  end;
  h.arr.(h.len) <- (k, v);
  h.len <- h.len + 1;
  let i = ref (h.len - 1) in
  while !i > 0 && key h !i < key h ((!i - 1) / 2) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek h = if h.len = 0 then None else Some h.arr.(0)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    h.arr.(0) <- h.arr.(h.len);
    let i = ref 0 in
    let continue = ref (h.len > 1) in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && key h l < key h !smallest then smallest := l;
      if r < h.len && key h r < key h !smallest then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    Some top
  end
