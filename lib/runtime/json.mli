(** JSON emission helpers shared by every JSON producer in the tree
    ({!Campaign.to_json}, the model-checking report of [bench -- check]).

    Since the telemetry layer landed this is a re-export of {!Obs.Json},
    which is where the single copy of the RFC 8259 escaping rules (and a
    minimal validating parser) now lives — existing [Runtime.Json.*] call
    sites are unaffected. *)

include module type of Obs.Json
