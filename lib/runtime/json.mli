(** Minimal JSON emission helpers shared by every JSON producer in the tree
    ({!Campaign.to_json}, the model-checking report of [bench -- check]).

    Only the string-escaping rules of RFC 8259 are centralized here — the
    callers compose objects by hand, which keeps the output byte-stable for
    diffing. *)

val buf_string : Buffer.t -> string -> unit
(** Append [s] as a JSON string literal: surrounding quotes, with quote,
    backslash and all control characters below U+0020 escaped. *)

val buf_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
(** [buf_list b f xs] appends [\[f x1, f x2, ...\]]. *)

val buf_int_list : Buffer.t -> int list -> unit

val escape : string -> string
(** [escape s] is the JSON string literal for [s], quotes included. *)
