(** Edge-churn adversary: edges of the (fixed) network appear and disappear
    over time — the dynamic-network regime of anonymous broadcast
    (Kuhn–Lynch–Oshman-style T-interval connectivity; Parzych & Daymude's
    dynamic lower bounds; Austin et al.'s amnesiac-flooding breakage under
    edge insertion).

    {!Faults} can kill an edge {e permanently}; this module makes edges
    come and go.  The dynamic graph is always a subgraph of the static
    {!Digraph} footprint: a {e removal} takes a present edge down for a
    bounded number of offers (losing every copy offered on it meanwhile — the
    [messages_lost_in_flight] of the report), after which it {e heals}; an
    {e add} is an edge absent from the start of the run that appears at a
    scripted point.  Topology never grows beyond the footprint, so port
    numbers and degree-indexed initial states stay well-defined.

    {b Clocks are edge-local.}  An edge's churn state advances only on the
    {e offers} made on it — copies of messages popped for delivery across
    that edge — exactly like {!Vfaults} downtime advances on deliveries
    offered to the vertex.  All of an edge's offers happen in the shard that
    owns its target vertex, so the sequential and sharded engines see
    identical fates, and a {!Scheduler.Replay} of the recorded [on_pop]
    schedule reproduces every churn event byte-for-byte.  The flip side: an
    edge nobody sends on has a frozen clock — a down edge heals only under
    traffic (e.g. {!Supervisor} retransmissions, which burn down the outage
    and then deliver the healed edge's last message).

    {b T-interval connectivity.}  The knob [t_interval] constrains the
    adversary to keep a stable spanning subgraph — the seeded {!skeleton}:
    a BFS out-arborescence from [s] plus one shortest out-step toward [t]
    per vertex — live through every window of [t_interval] deliveries, and
    additionally bounds every outage to fewer than [t_interval] consecutive
    offers.  {!constrain} {e clamps} a spec so the contract holds by
    construction ([t_interval = 1] permits no churn at all);
    {!with_contract} installs the contract {e without} clamping, so the
    engines count how often a raw adversary breaches it
    ([window_violations] — one per violating outage).

    Two specification styles compose into one {!t}, mirroring {!Vfaults}:
    probabilistic plans with per-edge PRNG streams derived from the seed,
    and deterministic scripts — the representation the {!Chaos} search
    minimizes. *)

type plan = {
  remove : float;  (** Per-offer removal probability, in [\[0,1\]]. *)
  max_downtime : int;
      (** Extra offers swallowed after the removing one: the outage spans
          [1 + Uniform{0..max_downtime}] offers.  Must be [>= 0]. *)
}

val stable : plan
(** The all-zero plan: the static network. *)

val plan : ?remove:float -> ?max_downtime:int -> unit -> plan
(** [stable] with fields overridden; validates ranges. *)

type event =
  | Remove of { edge : int; at : int; down_for : int }
      (** The edge vanishes on its [at]-th offer while up (1-based; that
          copy is lost), swallows [down_for] further offers, then heals. *)
  | Add of { edge : int; at : int }
      (** The edge is absent from the start; offers [1..at-1] are lost and
          the [at]-th delivers.  [at = 1] degenerates to a present edge. *)

val remove_event : edge:int -> at:int -> ?down_for:int -> unit -> event
(** Default [down_for = 1]. *)

val add_event : edge:int -> at:int -> event

val describe_event : event -> string
(** Stable canonical rendering, used by {!Chaos} keys and JSON. *)

type t
(** A churn specification; start a fresh {!Instance} per run. *)

val none : t
(** No churn; the engines take a fast path with zero delivery overhead. *)

val uniform : plan -> seed:int -> t
val per_edge : (int -> plan) -> seed:int -> t

val script : event list -> t
(** Deterministic churn only — the {!Chaos} witness representation.  At most
    one [Add] per edge; removals on one edge fire in [at] order. *)

val is_none : t -> bool

val skeleton : Digraph.t -> bool array
(** Per dense edge index: whether the edge belongs to the protected
    spanning subgraph (BFS arborescence from [s] union one shortest
    out-step toward [t] per co-reachable vertex). *)

val constrain : t_interval:int -> Digraph.t -> t -> t
(** Clamp the spec so the T-interval contract holds by construction:
    skeleton edges are never churned, and outages are capped below
    [t_interval] offers.  A spec clamped to nothing collapses to {!none}. *)

val with_contract : t_interval:int -> Digraph.t -> t -> t
(** Install the contract for {e accounting only}: fates are unchanged, but
    instances count [window_violations] — how {!Chaos} measures how badly a
    raw script breaches T-interval connectivity. *)

val of_dynamic : Digraph.Families.dyn_event list -> t
(** The churn script of a {!Digraph.Families.random_dynamic} scenario. *)

type fate =
  | Cross  (** The edge is live; the copy proceeds to its vertex fate. *)
  | Removed of int
      (** A removal fired on this offer (which is lost); the payload is the
          remaining outage length in offers. *)
  | Down  (** Swallowed by an absent edge that stays absent. *)
  | Back of [ `Add | `Heal ]
      (** Swallowed, but the outage drained: the edge is up again from the
          next offer on ([`Add] for an initially-absent edge's first
          appearance, [`Heal] for a removal healing). *)

(** Mutable per-run state: per-edge PRNG streams, up/down status, and the
    churn counters the engines fold into [churn_stats]. *)
module Instance : sig
  type churn := t
  type t

  val start : churn -> t

  val on_offer : t -> edge:int -> fate
  (** The fate of one copy offered on [edge]; advances that edge's clock
      and updates the counters. *)

  val is_up : t -> edge:int -> bool
  (** Whether the edge is currently present (no clock advance). *)

  val adds : t -> int
  (** Absent edges that came up. *)

  val removes : t -> int
  (** Removal transitions fired. *)

  val heals : t -> int
  (** Removed edges that came back up. *)

  val lost : t -> int
  (** Copies swallowed by absent edges ([messages_lost_in_flight]). *)

  val window_violations : t -> int
  (** Outages that breached the installed T-interval contract (0 when no
      contract is installed, and 0 by construction after {!constrain}). *)
end
