(** Asynchronous delivery schedules.

    The model of Section 2 is fully asynchronous: an adversary may delay any
    in-flight message arbitrarily.  The paper's correctness claims hold for
    {e every} schedule, so the engine abstracts delivery order behind this
    type and the test-suite re-runs protocols under many schedules.  Since
    the protocols are delta-based and state-monotone, no per-edge FIFO
    assumption is made — [Lifo] and [Random] freely reorder messages that
    share an edge. *)

type t =
  | Fifo  (** Deliver in send order: the "synchronous-looking" schedule. *)
  | Lifo  (** Always deliver the newest message: depth-first progress. *)
  | Random of Prng.t
      (** Uniformly random in-flight message: the schedule used for
          randomized stress tests. *)
  | Edge_priority of (int -> int)
      (** Deliver the in-flight message whose dense edge index minimizes the
          given function (ties by send order); an adversarial family —
          e.g. starving the direct edges to [t] for as long as possible. *)
  | Replay of int list
      (** Deliver exactly the listed send sequence numbers, in order, then
          stop (the engine then reports [Terminated]/[Quiescent] from the
          state reached).  Sequence numbers are assigned deterministically by
          the engine — the root's [sigma0] messages first, then each
          delivery's sends in emission order — so a schedule recorded by
          {!Explore} replays the exact same interleaving, turning a
          counterexample into a runnable {!Trace}. *)

val describe : t -> string
