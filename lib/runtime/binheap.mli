(** Array-backed binary min-heap on polymorphic-compare keys.

    Extracted from the engine so the same structure backs both the
    [Edge_priority] in-flight pool and the fault-injection delay queue, and
    so the heap-order property can be tested directly.  Keys are compared
    with [Stdlib.compare]; callers that need stable order include a
    sequence number in the key (e.g. [(priority, seq)]). *)

type ('k, 'v) t

val create : unit -> ('k, 'v) t

val length : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit

val peek : ('k, 'v) t -> ('k * 'v) option
(** Minimal-key entry without removing it. *)

val pop : ('k, 'v) t -> ('k * 'v) option
(** Remove and return the minimal-key entry. *)
