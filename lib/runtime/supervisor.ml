type config = {
  checkpoint_every : int;
  max_retries : int;
  base_timeout : int;
  jitter : bool;
  seed : int;
}

let config ?(checkpoint_every = 1) ?(max_retries = 4) ?(base_timeout = 8)
    ?(jitter = true) ?(seed = 0) () =
  if checkpoint_every < 1 then
    invalid_arg "Supervisor.config: checkpoint_every must be >= 1";
  if max_retries < 0 then
    invalid_arg "Supervisor.config: max_retries must be >= 0";
  if base_timeout < 1 then
    invalid_arg "Supervisor.config: base_timeout must be >= 1";
  { checkpoint_every; max_retries; base_timeout; jitter; seed }

let default = config ()

(* Exponential backoff with optional jitter: round [r] (0-based) holds the
   retransmitted copy for [base * 2^r] delivery steps plus a uniform jitter
   of up to [base - 1] more, so simultaneous retransmissions on different
   edges de-synchronize instead of slamming the pool in one step.  The
   jitter draw comes from the caller's supervisor PRNG, keeping the whole
   schedule reproducible from the config seed. *)
let backoff cfg prng ~round =
  let round = Stdlib.min round 20 in
  let base = cfg.base_timeout * (1 lsl round) in
  if cfg.jitter && cfg.base_timeout > 1 then
    base + Prng.int prng cfg.base_timeout
  else base
