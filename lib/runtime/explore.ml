type violation_kind =
  | False_termination of int list
  | Premature_quiescence
  | Conservation_violation of string
  | Local_invariant_violation of int

type violation = { kind : violation_kind; schedule : int list }

type stats = {
  states : int;
  transitions : int;
  pruned_sleep : int;
  pruned_memo : int;
  pruned_dup : int;
  peak_depth : int;
  max_in_flight : int;
  truncated : bool;
  walks : int;
  walk_deliveries : int;
}

type result = { stats : stats; violations : violation list }

let pruned_fraction st =
  let pruned = st.pruned_sleep + st.pruned_memo + st.pruned_dup in
  let considered = st.transitions + pruned in
  if considered = 0 then 0.0
  else float_of_int pruned /. float_of_int considered

let describe_kind = function
  | False_termination unreached ->
      Printf.sprintf "false termination (unvisited: %s)"
        (String.concat "," (List.map string_of_int unreached))
  | Premature_quiescence -> "premature quiescence (no message left, not accepting)"
  | Conservation_violation msg -> "conservation law broken: " ^ msg
  | Local_invariant_violation v ->
      Printf.sprintf "vertex invariant broken at vertex %d" v

type replay = {
  r_outcome : Engine.outcome;
  r_deliveries : int;
  r_unreached : int list;
  r_trace : string;
}

exception Abort
exception Budget

module Make (P : Protocol_intf.CHECKABLE) = struct
  module E = Engine.Make (P)

  type flight = {
    seq : int;
    edge : int;
    tv : Digraph.vertex;
    tp : int;
    msg : P.message;
    enc : string;  (** Length-prefixed wire encoding: the message's identity. *)
  }

  (* A global configuration.  [next_seq] replicates the engine's send
     numbering exactly (sigma0 first, then each delivery's sends in emission
     order), so a recorded path of [seq]s replays through
     [Scheduler.Replay]. *)
  type sim = {
    vstates : P.state array;
    visited : bool array;
    in_flight : flight list;
    next_seq : int;
  }

  let explore ?(max_states = 200_000) ?(max_depth = 2_000) ?(max_violations = 1)
      ?(walks = 64) ?(walk_len = 5_000) ?(walk_seed = 0x5EED)
      ?(expect_termination = true) ?obs g =
    let n = Digraph.n_vertices g in
    let ne = Digraph.n_edges g in
    let s = Digraph.source g in
    let t = Digraph.terminal g in
    let reach = Digraph.reachable_from_s g in
    let out_deg = Array.init n (Digraph.out_degree g) in
    let in_deg = Array.init n (Digraph.in_degree g) in
    let target = Array.make (Stdlib.max ne 1) (0, 0) in
    List.iter
      (fun u ->
        for j = 0 to out_deg.(u) - 1 do
          target.(Digraph.edge_index g u j) <- Digraph.out_port_target_port g u j
        done)
      (Digraph.vertices g);
    let encode msg =
      let w = Bitio.Bit_writer.create () in
      P.encode w msg;
      string_of_int (Bitio.Bit_writer.length w)
      ^ ":"
      ^ Bitio.Bit_writer.to_string w
    in
    let mk_flight ~seq ~fv ~fp msg =
      let edge = Digraph.edge_index g fv fp in
      let tv, tp = target.(edge) in
      { seq; edge; tv; tp; msg; enc = encode msg }
    in
    (* Turn a send batch into flights, numbering in emission order. *)
    let flights_of_sends ~fv ~first_seq sends =
      let next = ref first_seq in
      let rev =
        List.fold_left
          (fun acc (j, msg) ->
            let f = mk_flight ~seq:!next ~fv ~fp:j msg in
            incr next;
            f :: acc)
          [] sends
      in
      (List.rev rev, !next)
    in
    let initial_sim () =
      let vstates =
        Array.init n (fun v ->
            P.initial_state ~out_degree:out_deg.(v) ~in_degree:in_deg.(v))
      in
      let visited = Array.make n false in
      visited.(s) <- true;
      let in_flight, next_seq =
        flights_of_sends ~fv:s ~first_seq:0 (P.root_emit ~out_degree:out_deg.(s))
      in
      { vstates; visited; in_flight; next_seq }
    in
    (* Delivering [f]: returns the successor configuration and whether the
       engine would halt there (delivery to [t] leaving it accepting). *)
    let deliver sim (f : flight) =
      let vstates = Array.copy sim.vstates in
      let visited = Array.copy sim.visited in
      visited.(f.tv) <- true;
      let st', sends =
        P.receive ~out_degree:out_deg.(f.tv) ~in_degree:in_deg.(f.tv)
          vstates.(f.tv) f.msg ~in_port:f.tp
      in
      vstates.(f.tv) <- st';
      let fresh, next_seq = flights_of_sends ~fv:f.tv ~first_seq:sim.next_seq sends in
      let rec remove = function
        | [] -> []
        | g :: rest -> if g.seq = f.seq then rest else g :: remove rest
      in
      let in_flight = remove sim.in_flight @ fresh in
      let halted = f.tv = t && P.accepting st' in
      ({ vstates; visited; in_flight; next_seq }, halted)
    in
    (* {2 Transition identity} *)
    let tkey (f : flight) = string_of_int f.edge ^ "|" ^ f.enc in
    let tkey_target tk =
      let i = String.index tk '|' in
      fst target.(int_of_string (String.sub tk 0 i))
    in
    (* Two deliveries commute iff they update distinct vertices.  Deliveries
       to [t] are conservatively declared dependent on everything: they are
       the only transitions that can halt the run, and never sleeping them
       sidesteps the halt/commute interaction entirely. *)
    let independent tk tk' =
      let v = tkey_target tk and v' = tkey_target tk' in
      v <> v' && v <> t && v' <> t
    in
    let rec insert_sorted x = function
      | [] -> [ x ]
      | y :: rest as l ->
          let c = String.compare x y in
          if c < 0 then x :: l
          else if c = 0 then l
          else y :: insert_sorted x rest
    in
    (* Collapse identical in-flight copies (same edge, same bits) into one
       branch; the representative is the lowest [seq] so replays are
       deterministic.  Sorted by key for a canonical expansion order. *)
    let distinct_transitions flights =
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun f ->
          let tk = tkey f in
          match Hashtbl.find_opt tbl tk with
          | Some (g : flight) when g.seq <= f.seq -> ()
          | _ -> Hashtbl.replace tbl tk f)
        flights;
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
    in
    let canon sim =
      let c = Canonical.create () in
      Array.iter (fun st -> Canonical.add_string c (P.digest st)) sim.vstates;
      Canonical.add_bool_array c sim.visited;
      Canonical.add_sorted_strings c (List.map tkey sim.in_flight);
      Canonical.contents c
    in
    (* {2 Counters and the invariant suite} *)
    let memo = Canonical.Memo.create () in
    let transitions = ref 0 in
    let pruned_sleep = ref 0 in
    let pruned_memo = ref 0 in
    let pruned_dup = ref 0 in
    let peak_depth = ref 0 in
    let max_in_flight = ref 0 in
    let truncated = ref false in
    let walks_done = ref 0 in
    let walk_deliveries = ref 0 in
    let memo_hits = ref 0 in
    let conservation_checks = ref 0 in
    (* Telemetry: track id is the running domain so Par sweeps sharing one
       sink interleave cleanly in the trace viewer. *)
    let oh =
      Option.map
        (fun (o : Obs.t) ->
          (o, (Domain.self () :> int), Obs.Timeline.now o.Obs.timeline))
        obs
    in
    let obs_sample depth =
      match oh with
      | None -> ()
      | Some (o, track, t0) ->
          let tl = o.Obs.timeline in
          let states = Canonical.Memo.size memo in
          let dt = Obs.Timeline.now tl -. t0 in
          let rate = if dt > 0. then float_of_int states /. dt else 0. in
          let considered = !transitions + !memo_hits in
          let hit_rate =
            if considered = 0 then 0.
            else float_of_int !memo_hits /. float_of_int considered
          in
          Obs.Timeline.sample tl ~track "explore.states" (float_of_int states);
          Obs.Timeline.sample tl ~track "explore.states_per_s" rate;
          Obs.Timeline.sample tl ~track "explore.frontier_depth"
            (float_of_int depth);
          Obs.Timeline.sample tl ~track "explore.sleep_prunes"
            (float_of_int !pruned_sleep);
          Obs.Timeline.sample tl ~track "explore.memo_hit_rate" hit_rate
    in
    let obs_span emit =
      match oh with
      | None -> ()
      | Some (o, track, _) -> emit o.Obs.timeline track
    in
    let violations = ref [] in
    let n_violations = ref 0 in
    (* Deliveries from the initial configuration to the current one, newest
       first: reversing it yields the replayable schedule. *)
    let path = ref [] in
    let record kind =
      violations := { kind; schedule = List.rev !path } :: !violations;
      incr n_violations;
      if !n_violations >= max_violations then raise Abort
    in
    let check_invariants sim =
      (match P.conservation with
      | None -> ()
      | Some (Protocol_intf.Conservation c) ->
          incr conservation_checks;
          let total = ref c.zero in
          List.iter
            (fun f -> total := c.add !total (c.of_message f.msg))
            sim.in_flight;
          Array.iteri
            (fun v st ->
              total :=
                c.add !total
                  (c.retained ~out_degree:out_deg.(v) ~in_degree:in_deg.(v) st))
            sim.vstates;
          (match c.check !total with
          | Ok () -> ()
          | Error msg -> record (Conservation_violation msg)));
      match P.vertex_invariant with
      | None -> ()
      | Some inv ->
          Array.iteri
            (fun v st ->
              if not (inv ~out_degree:out_deg.(v) ~in_degree:in_deg.(v) st) then
                record (Local_invariant_violation v))
            sim.vstates
    in
    let check_termination sim =
      match
        List.filter (fun v -> reach.(v) && not sim.visited.(v)) (Digraph.vertices g)
      with
      | [] -> ()
      | unreached -> record (False_termination unreached)
    in
    (* Fingerprint the configuration; on first sight run the invariant suite
       and charge the state budget ([budget = false] during random walks —
       they are bounded by their own length). *)
    let note ~budget sim =
      let m = List.length sim.in_flight in
      if m > !max_in_flight then max_in_flight := m;
      let stored, fresh = Canonical.Memo.visit memo (canon sim) in
      if fresh then begin
        check_invariants sim;
        if budget && Canonical.Memo.size memo >= max_states then raise Budget
      end
      else incr memo_hits;
      stored
    in
    (* {2 The DFS with sleep sets} *)
    let rec visit sim sleep depth =
      if depth > !peak_depth then peak_depth := depth;
      let stored = note ~budget:true sim in
      match sim.in_flight with
      | [] ->
          if P.accepting sim.vstates.(t) then check_termination sim
          else if expect_termination then record Premature_quiescence
      | flights ->
          let enabled = distinct_transitions flights in
          if Canonical.Memo.covered stored sleep then
            pruned_memo :=
              !pruned_memo
              + List.length
                  (List.filter (fun (tk, _) -> not (List.mem tk sleep)) enabled)
          else begin
            Canonical.Memo.record stored sleep;
            pruned_dup := !pruned_dup + (List.length flights - List.length enabled);
            let sleep_now = ref sleep in
            List.iter
              (fun (tk, f) ->
                if List.mem tk !sleep_now then incr pruned_sleep
                else begin
                  (if depth >= max_depth then truncated := true
                   else begin
                     let sim', halted = deliver sim f in
                     incr transitions;
                     (match oh with
                     | Some (o, _, _) when !transitions mod o.Obs.sample_every = 0
                       ->
                         obs_sample depth
                     | _ -> ());
                     path := f.seq :: !path;
                     (if halted then begin
                        ignore (note ~budget:true sim');
                        check_termination sim'
                      end
                      else
                        visit sim'
                          (List.filter (fun tk' -> independent tk' tk) !sleep_now)
                          (depth + 1));
                     path := List.tl !path
                   end);
                  sleep_now := insert_sorted tk !sleep_now
                end)
              enabled
          end
    in
    (* {2 Seeded bounded random walks (degraded mode)} *)
    let random_walk prng =
      incr walks_done;
      path := [];
      let sim = ref (initial_sim ()) in
      ignore (note ~budget:false !sim);
      let steps = ref 0 in
      let stop = ref false in
      while (not !stop) && !steps < walk_len do
        match !sim.in_flight with
        | [] ->
            if P.accepting !sim.vstates.(t) then check_termination !sim
            else if expect_termination then record Premature_quiescence;
            stop := true
        | flights ->
            let f = List.nth flights (Prng.int prng (List.length flights)) in
            let sim', halted = deliver !sim f in
            incr steps;
            incr walk_deliveries;
            path := f.seq :: !path;
            ignore (note ~budget:false sim');
            if halted then begin
              check_termination sim';
              stop := true
            end
            else sim := sim'
      done
    in
    obs_span (fun tl track -> Obs.Timeline.begin_span tl ~track "explore.dfs");
    (try
       path := [];
       visit (initial_sim ()) [] 0
     with
    | Abort -> ()
    | Budget -> truncated := true);
    obs_span (fun tl track -> Obs.Timeline.end_span tl ~track "explore.dfs");
    if !truncated && !n_violations < max_violations && walks > 0 then begin
      obs_span (fun tl track ->
          Obs.Timeline.begin_span tl ~track "explore.walks");
      let prng = Prng.create walk_seed in
      (try
         for _ = 1 to walks do
           random_walk prng
         done
       with Abort -> ());
      obs_span (fun tl track -> Obs.Timeline.end_span tl ~track "explore.walks")
    end;
    (match obs with
    | None -> ()
    | Some o ->
        (* Atomic adds: parallel sweeps funnel many explorations into one
           registry, so totals accumulate across domains. *)
        let addc name v =
          Obs.Registry.aadd (Obs.Registry.acounter o.Obs.registry name) v
        in
        addc "explore.states" (Canonical.Memo.size memo);
        addc "explore.transitions" !transitions;
        addc "explore.pruned_sleep" !pruned_sleep;
        addc "explore.pruned_memo" !pruned_memo;
        addc "explore.pruned_dup" !pruned_dup;
        addc "explore.memo_hits" !memo_hits;
        addc "explore.walks" !walks_done;
        addc "explore.walk_deliveries" !walk_deliveries;
        addc "explore.conservation_checks" !conservation_checks;
        obs_sample 0);
    {
      stats =
        {
          states = Canonical.Memo.size memo;
          transitions = !transitions;
          pruned_sleep = !pruned_sleep;
          pruned_memo = !pruned_memo;
          pruned_dup = !pruned_dup;
          peak_depth = !peak_depth;
          max_in_flight = !max_in_flight;
          truncated = !truncated;
          walks = !walks_done;
          walk_deliveries = !walk_deliveries;
        };
      violations = List.rev !violations;
    }

  let replay ?payload_bits ?(trace_limit = 100) ?engine g schedule =
    let (module En : Engine_sig.S
          with type state = P.state
           and type message = P.message) =
      match engine with Some e -> e | None -> (module E)
    in
    let tr = Trace.create () in
    let r =
      En.run ~scheduler:(Scheduler.Replay schedule) ?payload_bits
        ~on_deliver:(Trace.hook tr) g
    in
    let reach = Digraph.reachable_from_s g in
    {
      r_outcome = r.outcome;
      r_deliveries = r.deliveries;
      r_unreached =
        List.filter (fun v -> reach.(v) && not r.visited.(v)) (Digraph.vertices g);
      r_trace = Trace.render ~limit:trace_limit tr;
    }
end
