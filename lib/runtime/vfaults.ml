type recovery = Stop | Amnesia | Restore

let describe_recovery = function
  | Stop -> "stop"
  | Amnesia -> "amnesia"
  | Restore -> "restore"

type plan = {
  crash : float;
  max_downtime : int;
  recovery : recovery;
  stutter : float;
}

let immortal = { crash = 0.0; max_downtime = 1; recovery = Amnesia; stutter = 0.0 }

let check_prob name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Vfaults: %s must be in [0,1]" name)

let validate p =
  check_prob "crash" p.crash;
  check_prob "stutter" p.stutter;
  if p.max_downtime < 1 then invalid_arg "Vfaults: max_downtime must be >= 1";
  p

let plan ?(crash = 0.0) ?(max_downtime = 1) ?(recovery = Amnesia)
    ?(stutter = 0.0) () =
  validate { crash; max_downtime; recovery; stutter }

let is_immortal p = p.crash = 0.0 && p.stutter = 0.0

type crash_event = {
  cv : int;
  at : int;
  downtime : int;
  c_recovery : recovery;
}

let event ~vertex ~at ?(downtime = 1) ?(recovery = Amnesia) () =
  if at < 1 then invalid_arg "Vfaults.event: at must be >= 1";
  if downtime < 1 then invalid_arg "Vfaults.event: downtime must be >= 1";
  { cv = vertex; at; downtime; c_recovery = recovery }

type t =
  | No_vfaults
  | Spec of { plan_of : int -> plan; script : crash_event list; seed : int }

let none = No_vfaults

let uniform p ~seed =
  let p = validate p in
  if is_immortal p then No_vfaults
  else Spec { plan_of = (fun _ -> p); script = []; seed }

let per_vertex f ~seed =
  Spec { plan_of = (fun v -> validate (f v)); script = []; seed }

let script events =
  match events with
  | [] -> No_vfaults
  | _ -> Spec { plan_of = (fun _ -> immortal); script = events; seed = 0 }

let is_none = function No_vfaults -> true | Spec _ -> false

type fate = Deliver | Stutter | Down_drop | Crash of recovery * int

module Instance = struct
  type vfaults = t

  type vstate =
    | Up
    | Down of { mutable left : int }  (** Deliveries still to swallow. *)
    | Stopped

  type vertex_state = {
    prng : Prng.t;
    plan : plan;
    mutable up_count : int;  (** Deliveries offered while up, 1-based. *)
    mutable status : vstate;
    mutable pending : crash_event list;  (** Scripted crashes, by [at]. *)
  }

  type t = {
    spec : vfaults;
    vertices : (int, vertex_state) Hashtbl.t;
    mutable stopped : int list;
    mutable crashes : int;
    mutable restarts : int;
    mutable down_drops : int;
    mutable stuttered : int;
  }

  let start spec =
    {
      spec;
      vertices = Hashtbl.create 16;
      stopped = [];
      crashes = 0;
      restarts = 0;
      down_drops = 0;
      stuttered = 0;
    }

  (* Each vertex draws from its own PRNG stream derived from (seed, vertex),
     so its fate does not depend on traffic elsewhere — the same property
     the edge-fault streams have, and what makes the sharded engine's
     per-domain instances agree with the sequential one. *)
  let vertex_state inst ~vertex =
    match Hashtbl.find_opt inst.vertices vertex with
    | Some st -> st
    | None ->
        let seed, plan_of, script =
          match inst.spec with
          | No_vfaults -> invalid_arg "Vfaults.Instance: no vertex faults"
          | Spec { seed; plan_of; script } -> (seed, plan_of, script)
        in
        let pending =
          List.sort
            (fun a b -> compare a.at b.at)
            (List.filter (fun e -> e.cv = vertex) script)
        in
        let st =
          {
            prng = Prng.create (seed lxor ((vertex + 1) * 0x7F4A7C15));
            plan = plan_of vertex;
            up_count = 0;
            status = Up;
            pending;
          }
        in
        Hashtbl.add inst.vertices vertex st;
        st

  let crash inst st ~vertex recovery downtime =
    inst.crashes <- inst.crashes + 1;
    (match recovery with
    | Stop ->
        st.status <- Stopped;
        inst.stopped <- vertex :: inst.stopped
    | Amnesia | Restore -> st.status <- Down { left = downtime });
    Crash (recovery, downtime)

  let on_deliver inst ~vertex =
    match inst.spec with
    | No_vfaults -> Deliver
    | Spec _ -> (
        let st = vertex_state inst ~vertex in
        match st.status with
        | Stopped ->
            inst.down_drops <- inst.down_drops + 1;
            Down_drop
        | Down d ->
            inst.down_drops <- inst.down_drops + 1;
            d.left <- d.left - 1;
            if d.left <= 0 then begin
              st.status <- Up;
              inst.restarts <- inst.restarts + 1
            end;
            Down_drop
        | Up -> (
            st.up_count <- st.up_count + 1;
            match st.pending with
            | e :: rest when e.at = st.up_count ->
                st.pending <- rest;
                crash inst st ~vertex e.c_recovery e.downtime
            | _ ->
                let p = st.plan in
                if p.crash > 0.0 && Prng.chance st.prng p.crash then
                  let downtime =
                    if p.recovery = Stop then 0
                    else 1 + Prng.int st.prng p.max_downtime
                  in
                  crash inst st ~vertex p.recovery downtime
                else if p.stutter > 0.0 && Prng.chance st.prng p.stutter then begin
                  inst.stuttered <- inst.stuttered + 1;
                  Stutter
                end
                else Deliver))

  let is_up inst ~vertex =
    match inst.spec with
    | No_vfaults -> true
    | Spec _ -> (
        match Hashtbl.find_opt inst.vertices vertex with
        | Some st -> st.status = Up
        | None -> true)

  let stopped inst = List.sort compare inst.stopped
  let crashes inst = inst.crashes
  let restarts inst = inst.restarts
  let down_drops inst = inst.down_drops
  let stuttered inst = inst.stuttered
end
