(** Exhaustive schedule-space model checking.

    The paper's correctness claims (Theorems 3.1, 4.2, 5.1 and the Section 6
    mapping argument) are quantified over {e every} asynchronous schedule.
    The engine samples schedules; this module enumerates them: a depth-first
    search over the full tree of delivery interleavings, where a node is the
    configuration (vertex states, visited flags, multiset of in-flight
    messages) and each branch delivers one in-flight message, mirroring
    {!Engine.Make} delivery-for-delivery (including its halt-on-acceptance
    rule and send numbering).

    At every distinct configuration an invariant suite runs: the protocol's
    conservation law across the linear cut ({!Protocol_intf.CHECKABLE}),
    per-vertex structural invariants, broadcast soundness (never halt
    accepting while a reachable vertex is unvisited) and, on quiescence of a
    protocol expected to terminate, premature-quiescence detection.

    Three reductions keep the tree tractable, all exact:
    - identical in-flight copies (same edge, same wire bits) collapse into
      one branch ([pruned_dup]);
    - configurations are canonicalized ({!Canonical}) and memoized, with
      re-expansion governed by stored sleep sets ([pruned_memo]);
    - sleep sets prune one of the two orders of independent deliveries —
      deliveries at distinct non-terminal vertices commute ([pruned_sleep]).

    Past a configurable state/depth budget the search flips [truncated] and
    degrades to seeded bounded random walks running the same invariant
    suite.  Either way a violation carries a concrete delivery schedule that
    {!Make.replay} feeds back through the real engine via
    {!Scheduler.Replay}. *)

type violation_kind =
  | False_termination of int list
      (** Halted accepting with these reachable vertices unvisited. *)
  | Premature_quiescence
      (** No message in flight, terminal not accepting, on a protocol
          expected to terminate. *)
  | Conservation_violation of string
  | Local_invariant_violation of int  (** The offending vertex. *)

type violation = {
  kind : violation_kind;
  schedule : int list;
      (** The delivery sequence (engine send numbers) reaching the violating
          configuration from the initial one. *)
}

type stats = {
  states : int;  (** Distinct configurations fingerprinted. *)
  transitions : int;  (** Deliveries executed by the DFS. *)
  pruned_sleep : int;  (** Branches skipped by sleep sets. *)
  pruned_memo : int;  (** Branches skipped at covered revisits. *)
  pruned_dup : int;  (** Identical-copy branches collapsed. *)
  peak_depth : int;
  max_in_flight : int;
  truncated : bool;  (** A state/depth budget was hit. *)
  walks : int;  (** Random walks run in degraded mode. *)
  walk_deliveries : int;
}

type result = { stats : stats; violations : violation list }

val pruned_fraction : stats -> float
(** Fraction of considered branches pruned:
    [(sleep + memo + dup) / (transitions + sleep + memo + dup)]. *)

val describe_kind : violation_kind -> string

type replay = {
  r_outcome : Engine.outcome;
  r_deliveries : int;
  r_unreached : int list;
      (** Reachable-but-unvisited vertices when the replay stopped. *)
  r_trace : string;  (** Rendered {!Trace} of the replayed run. *)
}

module Make (P : Protocol_intf.CHECKABLE) : sig
  val explore :
    ?max_states:int ->
    ?max_depth:int ->
    ?max_violations:int ->
    ?walks:int ->
    ?walk_len:int ->
    ?walk_seed:int ->
    ?expect_termination:bool ->
    ?obs:Obs.t ->
    Digraph.t ->
    result
  (** Defaults: [max_states = 200_000] distinct configurations,
      [max_depth = 2_000] deliveries per path, stop after
      [max_violations = 1], degrade to [walks = 64] random walks of at most
      [walk_len = 5_000] deliveries seeded from [walk_seed];
      [expect_termination] (default [true]) controls whether quiescence
      without acceptance is a violation.

      [obs], when given, records [explore.*] telemetry: atomic counters
      (states, transitions, the three prune tallies, memo hits, walks,
      walk deliveries, conservation checks) accumulated at the end of
      the search — atomically, so parallel sweeps can share one sink —
      plus [explore.dfs] / [explore.walks] spans and, every
      [sample_every] transitions, timeline samples of states seen,
      states/second, current frontier depth, sleep-set prunes and the
      memo hit rate.  The timeline track is the running domain's id. *)

  val replay :
    ?payload_bits:int ->
    ?trace_limit:int ->
    ?engine:
      (module Engine_sig.S with type state = P.state and type message = P.message) ->
    Digraph.t ->
    int list ->
    replay
  (** Re-run a recorded schedule through {!Engine.Make} under
      [Scheduler.Replay], returning the outcome, the soundness diagnosis and
      the rendered trace.  Deterministic: same schedule, same run.
      [engine] swaps the executor (e.g. for the Flatcore flat engine);
      the {!Engine_sig.S} parity contract makes the replay
      engine-independent. *)
end
