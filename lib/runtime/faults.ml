type plan = {
  drop : float;
  duplicate : float;
  max_delay : int;
  corrupt : float;
  kill : float;
}

let reliable = { drop = 0.0; duplicate = 0.0; max_delay = 0; corrupt = 0.0; kill = 0.0 }

let check_prob name p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Faults: %s must be in [0,1]" name)

let validate p =
  check_prob "drop" p.drop;
  check_prob "corrupt" p.corrupt;
  check_prob "kill" p.kill;
  if p.duplicate < 0.0 || p.duplicate >= 1.0 then
    invalid_arg "Faults: duplicate must be in [0,1)";
  if p.max_delay < 0 then invalid_arg "Faults: max_delay must be >= 0";
  p

let plan ?(drop = 0.0) ?(duplicate = 0.0) ?(max_delay = 0) ?(corrupt = 0.0)
    ?(kill = 0.0) () =
  validate { drop; duplicate; max_delay; corrupt; kill }

let is_reliable p = p = reliable

type t = No_faults | Spec of { plan_of : int -> plan; seed : int }

let none = No_faults

let uniform p ~seed =
  let p = validate p in
  if is_reliable p then No_faults else Spec { plan_of = (fun _ -> p); seed }

let create ?drop ?duplicate ?max_delay ?corrupt ?kill ~seed () =
  uniform (plan ?drop ?duplicate ?max_delay ?corrupt ?kill ()) ~seed

let per_edge f ~seed = Spec { plan_of = (fun e -> validate (f e)); seed }

let is_none = function No_faults -> true | Spec _ -> false

type copy_fate = { delay : int; flip_bit : bool }

module Instance = struct
  type faults = t

  type edge_state = { prng : Prng.t; plan : plan; mutable dead : bool }

  type t = {
    spec : faults;
    edges : (int, edge_state) Hashtbl.t;
    mutable dead_edges : int list;
    mutable dropped : int;
    mutable extra : int;
    mutable delayed : int;
  }

  let start spec =
    { spec; edges = Hashtbl.create 16; dead_edges = []; dropped = 0; extra = 0; delayed = 0 }

  (* Each edge draws from its own PRNG stream, derived from (seed, edge), so
     the faults an edge sees do not depend on traffic elsewhere. *)
  let edge_state inst ~edge =
    match Hashtbl.find_opt inst.edges edge with
    | Some st -> st
    | None ->
        let seed, plan_of =
          match inst.spec with
          | No_faults -> invalid_arg "Faults.Instance: no faults"
          | Spec { seed; plan_of } -> (seed, plan_of)
        in
        let st =
          {
            prng = Prng.create (seed lxor ((edge + 1) * 0x9E3779B9));
            plan = plan_of edge;
            dead = false;
          }
        in
        Hashtbl.add inst.edges edge st;
        st

  let clean_copy = { delay = 0; flip_bit = false }

  let on_send inst ~edge =
    match inst.spec with
    | No_faults -> [ clean_copy ]
    | Spec _ ->
        let st = edge_state inst ~edge in
        if st.dead then begin
          inst.dropped <- inst.dropped + 1;
          []
        end
        else begin
          let p = st.plan in
          if p.kill > 0.0 && Prng.chance st.prng p.kill then begin
            st.dead <- true;
            inst.dead_edges <- edge :: inst.dead_edges;
            inst.dropped <- inst.dropped + 1;
            []
          end
          else begin
            let copies = ref 1 in
            while p.duplicate > 0.0 && Prng.chance st.prng p.duplicate do
              incr copies
            done;
            inst.extra <- inst.extra + (!copies - 1);
            let fates = ref [] in
            for _ = 1 to !copies do
              if p.drop > 0.0 && Prng.chance st.prng p.drop then
                inst.dropped <- inst.dropped + 1
              else begin
                let delay =
                  if p.max_delay = 0 then 0 else Prng.int st.prng (p.max_delay + 1)
                in
                if delay > 0 then inst.delayed <- inst.delayed + 1;
                let flip_bit = p.corrupt > 0.0 && Prng.chance st.prng p.corrupt in
                fates := { delay; flip_bit } :: !fates
              end
            done;
            List.rev !fates
          end
        end

  let corrupt_bit inst ~edge ~length_bits =
    if length_bits <= 0 then invalid_arg "Faults.Instance.corrupt_bit";
    Prng.int (edge_state inst ~edge).prng length_bits

  let edge_dead inst ~edge =
    match inst.spec with
    | No_faults -> false
    | Spec _ -> (
        match Hashtbl.find_opt inst.edges edge with
        | Some st -> st.dead
        | None -> false)

  let dead_edges inst = List.sort compare inst.dead_edges
  let dropped_copies inst = inst.dropped
  let extra_copies inst = inst.extra
  let delayed_copies inst = inst.delayed
end
