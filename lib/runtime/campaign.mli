(** Deterministic fault campaigns.

    A campaign sweeps the full cross product
    {e runners × graph cases × fault grid × seeds}, runs every cell through
    the asynchronous engine, and checks the soundness invariant that the
    paper's termination machinery (Lemma 3.5's linear cut) is supposed to
    guarantee: a run may never report [Terminated] while a vertex that is
    reachable from [s] was left unvisited.  Violations are recorded — they
    are findings, not crashes, since e.g. duplication provably breaks the
    bare broadcast protocols — and shrunk to a minimal failing (fault-rate,
    seed) pair.  [Quiescent] runs are diagnosed: which reachable vertices
    starved and which edges went dark (were killed by the plan).

    Everything is seeded: a campaign is bit-for-bit reproducible (the
    summary, every diagnostic and the JSON rendering), which makes a failing
    cell a regression test for free. *)

type fault_point = {
  label : string;
  fault_plan : Faults.plan;  (** Applied uniformly to every edge. *)
}

val point :
  ?drop:float ->
  ?duplicate:float ->
  ?max_delay:int ->
  ?corrupt:float ->
  ?kill:float ->
  ?label:string ->
  unit ->
  fault_point
(** A grid point; the default label encodes the non-zero rates. *)

val grid :
  ?drops:float list ->
  ?duplicates:float list ->
  ?max_delays:int list ->
  ?corrupts:float list ->
  ?kills:float list ->
  unit ->
  fault_point list
(** Cross product of the given axes (each defaults to [[0]]/[[0.0]]). *)

type run_summary = {
  outcome : Engine.outcome;
  visited : bool array;
  deliveries : int;
  total_bits : int;
  final_in_flight : int;
  fault_stats : Engine.fault_stats;
}

type runner = {
  r_name : string;
  run : faults:Faults.t -> step_limit:int -> Digraph.t -> run_summary;
}
(** A protocol under test, abstracted so the campaign machinery does not
    depend on any concrete protocol library. *)

(** Wrap a protocol's engine as a campaign runner. *)
module Of_protocol (P : Protocol_intf.PROTOCOL) : sig
  val runner : ?scheduler:Scheduler.t -> ?name:string -> unit -> runner
  (** Defaults: [Fifo] (keeps the campaign deterministic), [P.name]. *)
end

type graph_case = { g_name : string; build : seed:int -> Digraph.t }
(** A graph family; [build] must be deterministic in [seed]. *)

type violation = {
  v_runner : string;
  v_graph : string;
  v_point : fault_point;
  v_seed : int;
  unreached : int list;
      (** Vertices reachable from [s] but unvisited at [Terminated]. *)
  shrunk_point : fault_point;  (** Minimal rates that still fail. *)
  shrunk_seed : int;  (** Smallest sweep seed failing at [shrunk_point]. *)
}

type starvation = {
  s_runner : string;
  s_graph : string;
  s_point : fault_point;
  s_seed : int;
  starved : int list;  (** Reachable vertices never visited. *)
  dark_edges : int list;  (** Edges the plan killed. *)
}

type cell = {
  c_runner : string;
  c_graph : string;
  c_point : fault_point;
  runs : int;
  terminated : int;  (** Sound terminations. *)
  false_terminated : int;  (** Terminations violating soundness. *)
  quiescent : int;
  step_limited : int;
  total_deliveries : int;
  total_bits : int;
}
(** Aggregates over the seeds of one (runner, graph, fault point). *)

type result = {
  cells : cell list;
  violations : violation list;
  starvations : starvation list;
}

val run :
  ?step_limit:int ->
  ?max_shrinks:int ->
  runners:runner list ->
  graphs:graph_case list ->
  grid:fault_point list ->
  seeds:int list ->
  unit ->
  result
(** Sweep everything.  Defaults: [step_limit = 200_000]; at most
    [max_shrinks = 8] {e distinct} failures are shrunk: shrink results are
    memoized by the canonical (runner, graph, fault-plan) key, so the many
    seeds of one failing cell share a single shrink run instead of burning
    the budget on identical witnesses (the rest keep their original
    witness).  Fault seeds are taken verbatim from [seeds], so a reported
    [(point, seed)] pair replays with
    [Faults.uniform point.fault_plan ~seed]. *)

val sound : result -> bool
(** No violation anywhere in the sweep. *)

val to_json : result -> string
(** Stable JSON rendering of the whole result (cells, violations,
    starvation diagnostics), suitable for dashboards and diffing. *)
