(* Deliveries land in a doubling array rather than a cons list: long
   instrumented runs record millions of events, and the array form lets
   [iter]/[render]/[to_csv] walk them without materializing a list copy. *)

let dummy : Engine.event =
  { step = 0; seq = 0; from_vertex = 0; from_port = 0; to_vertex = 0; to_port = 0; bits = 0 }

type t = { mutable buf : Engine.event array; mutable count : int }

let create () = { buf = [||]; count = 0 }

let hook tr (ev : Engine.event) _msg =
  let cap = Array.length tr.buf in
  if tr.count = cap then begin
    let buf = Array.make (Stdlib.max 16 (2 * cap)) dummy in
    Array.blit tr.buf 0 buf 0 cap;
    tr.buf <- buf
  end;
  tr.buf.(tr.count) <- ev;
  tr.count <- tr.count + 1

let length tr = tr.count

let iter f tr =
  for i = 0 to tr.count - 1 do
    f tr.buf.(i)
  done

let events tr = List.init tr.count (fun i -> tr.buf.(i))

let sends_per_vertex tr ~n =
  let a = Array.make n 0 in
  iter (fun (ev : Engine.event) -> a.(ev.from_vertex) <- a.(ev.from_vertex) + 1) tr;
  a

let receives_per_vertex tr ~n =
  let a = Array.make n 0 in
  iter (fun (ev : Engine.event) -> a.(ev.to_vertex) <- a.(ev.to_vertex) + 1) tr;
  a

let render ?(limit = 100) tr =
  let buf = Buffer.create 256 in
  let shown = Stdlib.min limit tr.count in
  for i = 0 to shown - 1 do
    let ev = tr.buf.(i) in
    Buffer.add_string buf
      (Printf.sprintf "#%-5d %d.%d -> %d.%d  %4d bits\n" ev.step ev.from_vertex
         ev.from_port ev.to_vertex ev.to_port ev.bits)
  done;
  if tr.count > shown then
    Buffer.add_string buf
      (Printf.sprintf "... (%d more deliveries)\n" (tr.count - shown));
  Buffer.contents buf

let to_csv tr =
  let buf = Buffer.create (64 + (tr.count * 24)) in
  Buffer.add_string buf "step,from_vertex,from_port,to_vertex,to_port,bits\n";
  iter
    (fun (ev : Engine.event) ->
      Printf.bprintf buf "%d,%d,%d,%d,%d,%d\n" ev.step ev.from_vertex
        ev.from_port ev.to_vertex ev.to_port ev.bits)
    tr;
  Buffer.contents buf

let edge_first_use tr =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  iter
    (fun (ev : Engine.event) ->
      let key = (ev.from_vertex, ev.from_port) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        acc := (key, ev.step) :: !acc
      end)
    tr;
  List.rev !acc
