type 'state report = { base : 'state Engine.report; rounds : int }

module Make (P : Protocol_intf.PROTOCOL) = struct
  type flight = {
    fv : Digraph.vertex;
    fp : int;
    tv : Digraph.vertex;
    tp : int;
    edge : int;
    msg : P.message;
  }

  let run ?(payload_bits = 0) ?(round_limit = 100_000) ?on_deliver g =
    let n = Digraph.n_vertices g in
    let ne = Digraph.n_edges g in
    let t = Digraph.terminal g in
    let target = Array.make (Stdlib.max ne 1) (0, 0) in
    List.iter
      (fun u ->
        for j = 0 to Digraph.out_degree g u - 1 do
          target.(Digraph.edge_index g u j) <- Digraph.out_port_target_port g u j
        done)
      (Digraph.vertices g);
    let states =
      Array.init n (fun v ->
          P.initial_state ~out_degree:(Digraph.out_degree g v)
            ~in_degree:(Digraph.in_degree g v))
    in
    let visited = Array.make n false in
    let edge_messages = Array.make (Stdlib.max ne 1) 0 in
    let edge_bits = Array.make (Stdlib.max ne 1) 0 in
    let total_bits = ref 0 in
    let max_message_bits = ref 0 in
    let max_state_bits = ref 0 in
    let deliveries = ref 0 in
    let seen : (string, unit) Hashtbl.t = Hashtbl.create 64 in
    let make fv fp msg =
      let edge = Digraph.edge_index g fv fp in
      let tv, tp = target.(edge) in
      { fv; fp; tv; tp; edge; msg }
    in
    let max_in_flight = ref 0 in
    let current =
      ref
        (List.map
           (fun (j, msg) -> make (Digraph.source g) j msg)
           (P.root_emit ~out_degree:(Digraph.out_degree g (Digraph.source g))))
    in
    visited.(Digraph.source g) <- true;
    let rounds = ref 0 in
    let outcome = ref Engine.Quiescent in
    let running = ref (!current <> []) in
    while !running do
      if !rounds >= round_limit then begin
        outcome := Engine.Step_limit;
        running := false
      end
      else begin
        incr rounds;
        if List.length !current > !max_in_flight then
          max_in_flight := List.length !current;
        let next = ref [] in
        List.iter
          (fun f ->
            incr deliveries;
            let w = Bitio.Bit_writer.create () in
            P.encode w f.msg;
            let bits = Bitio.Bit_writer.length w + payload_bits in
            let key =
              string_of_int (Bitio.Bit_writer.length w)
              ^ ":"
              ^ Bitio.Bit_writer.to_string w
            in
            if not (Hashtbl.mem seen key) then Hashtbl.add seen key ();
            total_bits := !total_bits + bits;
            edge_messages.(f.edge) <- edge_messages.(f.edge) + 1;
            edge_bits.(f.edge) <- edge_bits.(f.edge) + bits;
            if bits > !max_message_bits then max_message_bits := bits;
            (match on_deliver with
            | Some hook ->
                hook
                  {
                    Engine.step = !deliveries;
                    (* The synchronous engine has no send sequencing; expose
                       a 0-based delivery index so traces stay well-typed. *)
                    seq = !deliveries - 1;
                    from_vertex = f.fv;
                    from_port = f.fp;
                    to_vertex = f.tv;
                    to_port = f.tp;
                    bits;
                  }
                  f.msg
            | None -> ());
            visited.(f.tv) <- true;
            let state', sends =
              P.receive
                ~out_degree:(Digraph.out_degree g f.tv)
                ~in_degree:(Digraph.in_degree g f.tv)
                states.(f.tv) f.msg ~in_port:f.tp
            in
            states.(f.tv) <- state';
            let b = P.state_bits state' in
            if b > !max_state_bits then max_state_bits := b;
            List.iter (fun (j, msg) -> next := make f.tv j msg :: !next) sends)
          !current;
        current := List.rev !next;
        if P.accepting states.(t) then begin
          outcome := Engine.Terminated;
          running := false
        end
        else if !current = [] then begin
          outcome := Engine.Quiescent;
          running := false
        end
      end
    done;
    {
      base =
        {
          Engine.outcome = !outcome;
          deliveries = !deliveries;
          total_bits = !total_bits;
          max_edge_bits = Array.fold_left Stdlib.max 0 edge_bits;
          max_message_bits = !max_message_bits;
          max_state_bits = !max_state_bits;
          max_in_flight = !max_in_flight;
          final_in_flight = List.length !current;
          distinct_messages = Hashtbl.length seen;
          edge_messages;
          edge_bits;
          visited;
          states;
          fault_stats = Engine.no_faults_stats;
          vfault_stats = Engine.no_vfaults_stats;
          churn_stats = Engine.no_churn_stats;
        };
      rounds = !rounds;
    }
end
