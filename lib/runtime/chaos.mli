(** Joint edge-and-vertex fault-space search ("chaos campaigns").

    {!Campaign} sweeps a fixed grid of {e rates}; this module {e searches}
    the space of {e discrete} fault sets — "kill this edge, crash that
    vertex at its 3rd delivery" — for minimal combinations that break a
    protocol's broadcast guarantees:

    - {e soundness} ([Unsound]): the terminal's stopping predicate fired
      while some required vertex was never reached — a false positive of
      the paper's linear-cut termination machinery;
    - {e liveness} ([Starved]): the run went quiet (or hit the step limit)
      with required vertices unreached.

    "Required" degrades gracefully with the injected faults: a vertex is
    required iff it is reachable from [s] through live edges and
    non-crash-stopped vertices — crash-stopped vertices are excused (they
    cannot complete a receive) and do not forward.  This is exactly the
    partial-coverage contract of the {!Supervisor} layer.

    The search is seeded random generation over fault sets of bounded size,
    followed by greedy-bisection shrinking of every hit (delta-debugging:
    halves first, then single atoms, then parameter lowering) preserving
    the violation kind, canonical-key deduplication of the shrunk sets, and
    a replayable witness per surviving set: the exact delivery schedule of
    the violating run, recorded seq-by-seq, re-runnable through
    {!Scheduler.Replay} for a byte-identical report.

    Everything is deterministic from [config.seed].  The per-trial
    evaluation is exposed ({!trials} / {!eval_trial}) so {!Par}[.Chaos] can
    fan the generation phase over a domain pool without this module
    depending on the multicore layer. *)

type fault =
  | Kill_edge of int  (** Permanently kill a dense edge index. *)
  | Crash_vertex of Vfaults.crash_event
  | Churn_edge of Churn.event
      (** One churn-script atom: a bounded outage ([Remove]) or an
          initially-absent edge appearing mid-run ([Add]). *)

val describe_fault : fault -> string
(** Stable, canonical rendering; used for the dedup key and JSON. *)

val canonical_key : fault list -> string
(** Order-insensitive canonical key of a fault set. *)

val compile : fault list -> Faults.t * Vfaults.t * Churn.t
(** The engine-level fault specifications a fault set denotes: kills become
    per-edge [kill = 1.0] plans, crashes become a {!Vfaults.script}, churn
    atoms a {!Churn.script} (extra [Add]s on one edge are dropped, keeping
    the first). *)

val required : Digraph.t -> fault list -> bool array
(** The degraded coverage obligation described above.  [Churn_edge Add]
    atoms excuse like kills (the edge only appears if traffic heals it);
    [Remove] atoms excuse nothing — their outages are bounded. *)

(** {1 Runners} *)

type summary = {
  outcome : Engine.outcome;
  visited : bool array;
  deliveries : int;
  total_bits : int;
  fault_stats : Engine.fault_stats;
  vfault_stats : Engine.vertex_fault_stats;
  churn_stats : Engine.churn_stats;
  schedule : int list;
      (** Consumed-copy seq numbers in order, when recorded; [[]] else. *)
}

type runner = {
  r_name : string;
  run :
    scheduler:Scheduler.t ->
    record:bool ->
    faults:Faults.t ->
    vfaults:Vfaults.t ->
    churn:Churn.t ->
    supervisor:Supervisor.config option ->
    step_limit:int ->
    Digraph.t ->
    summary;
}

module Of_protocol (P : Protocol_intf.PROTOCOL) : sig
  val runner : ?name:string -> unit -> runner
end

(** {1 Search} *)

type config = {
  budget : int;  (** Random fault sets per (runner, graph). *)
  max_faults : int;  (** Max atoms per generated set. *)
  seed : int;
  p_edge : float;  (** Probability an atom is an edge kill. *)
  recoveries : Vfaults.recovery list;  (** Crash recovery modes drawn. *)
  max_at : int;  (** Crash positions drawn from [1..max_at]. *)
  max_downtime : int;
  step_limit : int;
  supervisor : Supervisor.config option;
      (** Armed on every run the search performs, including replays. *)
  p_churn : float;
      (** Probability an atom is a churn event.  With the default [0.0] the
          generator draws exactly the PRNG stream it always did, so
          pre-churn seeds keep their witnesses byte-for-byte. *)
  churn_t : int option;
      (** When set, every run (trials, shrinks, replays) installs the
          T-interval contract for {e accounting} ({!Churn.with_contract}):
          fates are unchanged — replays stay byte-identical — and the
          witness's [churn_stats.window_violations] reports contract
          breaches. *)
}

val config :
  ?budget:int ->
  ?max_faults:int ->
  ?seed:int ->
  ?p_edge:float ->
  ?recoveries:Vfaults.recovery list ->
  ?max_at:int ->
  ?max_downtime:int ->
  ?step_limit:int ->
  ?supervisor:Supervisor.config ->
  ?p_churn:float ->
  ?churn_t:int ->
  unit ->
  config
(** Defaults: budget 500, max_faults 4, seed 0, p_edge 0.5, all three
    recoveries, max_at 6, max_downtime 4, step_limit 200_000, no
    supervisor, p_churn 0.0, no churn_t. *)

type kind =
  | Unsound
  | Starved
  | Livelock
      (** Full coverage but [Step_limit]: the run never stopped spinning —
          e.g. amnesiac flooding after a churned-in edge closes a cycle.
          [w_missing] is empty for these witnesses. *)

val describe_kind : kind -> string

type witness = {
  w_runner : string;
  w_graph : string;
  w_kind : kind;
  w_trial : int;  (** Trial index that first hit this (pre-shrink). *)
  w_original_size : int;  (** Atoms in the unshrunk set. *)
  w_faults : fault list;  (** The shrunk set. *)
  w_missing : int list;  (** Required-but-unvisited vertices. *)
  w_outcome : Engine.outcome;
  w_deliveries : int;
  w_total_bits : int;
  w_schedule : int list;  (** Replayable delivery schedule. *)
}

type result = {
  trials_run : int;
  hits : int;  (** Violating trials before shrinking / dedup. *)
  duplicates : int;  (** Hits whose shrunk set was already witnessed. *)
  witnesses : witness list;
  unsound : int;  (** Witnesses of kind [Unsound]. *)
  starved : int;
  livelocked : int;  (** Witnesses of kind [Livelock]. *)
}

val trials : config -> graph:Digraph.t -> fault list array
(** The [budget] generated fault sets, deterministic from the config seed
    and the graph shape. *)

val eval_trial :
  config -> runner -> graph:Digraph.t -> fault list -> (kind * int list) option
(** Run one fault set; [Some (kind, missing)] iff it violates. *)

val run :
  ?map:
    ((fault list -> (kind * int list) option) ->
    fault list array ->
    (kind * int list) option array) ->
  config ->
  runners:runner list ->
  graphs:Campaign.graph_case list ->
  result
(** Full search: generate, evaluate ([map] lets {!Par}[.Chaos] parallelize
    this phase; default is sequential [Array.map]), shrink each hit
    preserving its kind, dedup by {!canonical_key}, and record a replay
    schedule per witness.  Graphs are built with [seed = config.seed]. *)

val replay :
  config -> runner -> Campaign.graph_case -> witness -> summary
(** Re-run a witness through {!Scheduler.Replay} on its recorded schedule
    (with the same compiled faults and supervisor). *)

val confirms : witness -> summary -> bool
(** Whether a replayed summary reproduces the witness: same outcome,
    delivery count, bit total and missing-vertex set. *)

val to_json : result -> string
