(** The anonymous-protocol signature of Section 2.

    A protocol is [(Pi, Sigma, pi0, sigma0, f, g, S)].  Our [receive]
    fuses [f] and [g]: one incoming message produces the successor state and
    the batch of outgoing messages ([g = phi] ports simply don't appear in
    the list).  A vertex is given nothing but its own degrees and the
    in-port the message arrived on — the full extent of the knowledge the
    model allows. *)

exception Checksum_reject
(** Raised by a [decode] that detected corruption via an integrity check
    (e.g. the {!Redundant} wrapper's 16-bit checksum), as opposed to an
    encoding that merely fails to parse.  The engines count the two
    separately: a checksum reject is a {e detected} corruption, a garbled
    drop an {e accidental} one. *)

module type PROTOCOL = sig
  type state
  type message

  val name : string

  val initial_state : out_degree:int -> in_degree:int -> state
  (** The common initial state [pi0] (degree-indexed, since a vertex does
      know its own degrees). *)

  val root_emit : out_degree:int -> (int * message) list
  (** The root's spontaneous emission [sigma0].  The paper's base model has
      a single out-edge at [s]; this hook realizes the extension to roots
      with several out-edges (Section 2: "our results can be easily
      extended...") — commodity-based protocols split their unit commodity
      across the ports rather than duplicating it. *)

  val receive :
    out_degree:int ->
    in_degree:int ->
    state ->
    message ->
    in_port:int ->
    state * (int * message) list
  (** [receive ~out_degree ~in_degree pi sigma ~in_port] is
      [(f pi sigma i, [(j, g pi sigma i j); ...])]. *)

  val accepting : state -> bool
  (** The stopping predicate [S], evaluated by the environment on the
      terminal's state. *)

  val encode : Bitio.Bit_writer.t -> message -> unit
  (** Concrete self-delimiting wire encoding; its length is what the
      instrumentation charges to the edge. *)

  val decode : Bitio.Bit_reader.t -> message
  (** Inverse of {!encode}; the engine's [verify_codec] mode decodes every
      message it delivers and checks it round-trips. *)

  val equal_message : message -> message -> bool

  val state_bits : state -> int
  (** Approximate size of the state in bits — the paper's memory-per-vertex
      quality measure (Section 2, "Quality"). *)

  val pp_message : Format.formatter -> message -> unit
  val pp_state : Format.formatter -> state -> unit
end

(** {1 Model-checking hooks}

    {!Explore} verifies protocols against machine-checkable invariants.  The
    central one is the paper's linear-cut argument (Lemma 3.5 and its
    Section 4 analogue): at {e every} instant, the commodity spread over the
    in-flight messages plus what the vertices retain is exactly the unit the
    root injected.  The law is packaged with an existential accumulator type
    so scalar protocols can sum exact commodities while interval protocols
    accumulate union-plus-disjointness — the checker itself stays generic
    (and this library dependency-free). *)

type ('state, 'message, 'acc) conservation = {
  zero : 'acc;
  add : 'acc -> 'acc -> 'acc;
  of_message : 'message -> 'acc;
      (** The commodity a message carries across the cut. *)
  retained : out_degree:int -> in_degree:int -> 'state -> 'acc;
      (** The commodity a vertex currently holds (not yet re-emitted). *)
  check : 'acc -> (unit, string) result;
      (** Is the whole-network total lawful?  [Error] describes the breach. *)
}

type ('state, 'message) conservation_law =
  | Conservation :
      ('state, 'message, 'acc) conservation
      -> ('state, 'message) conservation_law

(** A protocol the {!Explore} model checker can drive.  Everything in
    {!PROTOCOL} plus a canonical state fingerprint and optional invariants. *)
module type CHECKABLE = sig
  include PROTOCOL

  val digest : state -> string
  (** A canonical fingerprint: two states behave identically under [receive]
      and [accepting] iff their digests are equal.  Pure bookkeeping fields
      (delivery counters and other statistics) should be {e omitted} so that
      behaviorally equal states are memoized together. *)

  val conservation : (state, message) conservation_law option
  (** The protocol's linear-cut law, if it has one ([None] for protocols —
      like plain flooding — that duplicate rather than split). *)

  val vertex_invariant :
    (out_degree:int -> in_degree:int -> state -> bool) option
  (** A per-vertex structural invariant checked at every explored state
      (e.g. pairwise disjointness of an interval vertex's port sets). *)
end
