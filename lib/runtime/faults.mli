(** Per-edge channel fault plans.

    The paper's model assumes reliable, exactly-once (if arbitrarily slow)
    channels; these knobs let the test-suite and the {!Campaign} harness
    probe what actually depends on that assumption:

    - {e drops}: no protocol in the paper retransmits, so any lost message
      must show up as non-termination, never as a false positive — this
      safety direction holds for every protocol and is property-tested;
    - {e duplication}: a re-delivered alpha commodity is indistinguishable
      from a detected cycle, so the scalar protocols double-count flow and
      even the interval protocols of Sections 4/5 can beta-flood coverage
      for values still in flight — both can falsely terminate (the paper's
      reliance on exactly-once channels is real).  The one exception is the
      mapping protocol: its termination additionally waits for one
      adjacency fact per announced out-edge, and facts are only minted by
      labeled (hence visited) vertices, which restores duplication safety;
    - {e delay}: a bounded hold on individual copies, which reorders
      messages sharing an edge even under the [Fifo] scheduler — the
      protocols are delta-based and must tolerate this;
    - {e corruption}: a single flipped bit on the encoded wire message,
      pushed through the real [decode] path by the engine;
    - {e kill}: a permanent edge failure — the adversary of the paper's
      non-termination direction made concrete.

    {2 Distribution of one send}

    For a send on a live edge the draws are {e independent}, in this order,
    all from a per-edge PRNG stream derived from the plan seed (so a run is
    reproducible from [(seed, schedule)] and the stream of one edge does not
    depend on traffic elsewhere):

    + with probability [kill], the edge dies permanently; the killing send
      and everything after it on that edge is lost;
    + [1 + Geometric(duplicate)] copies are materialized: the count of
      extra copies is the number of leading successes of a [duplicate]-coin,
      so [P(extra = j) = duplicate^j * (1 - duplicate)] — unbounded, unlike
      the former implementation which (a) only sampled duplication when the
      drop coin failed and (b) capped the count at 2;
    + each copy is {e independently} dropped with probability [drop];
    + each surviving copy is held for [Uniform{0..max_delay}] delivery
      steps and has one uniformly chosen bit of its wire encoding flipped
      with probability [corrupt].

    Duplication and drop compose the obvious way: a send materializes
    [Binomial(1 + Geometric(duplicate), 1 - drop)] deliverable copies. *)

type plan = {
  drop : float;  (** Per-copy Bernoulli loss probability, in [\[0,1\]]. *)
  duplicate : float;
      (** Geometric extra-copy parameter, in [\[0,1)]; expected extra copies
          [duplicate / (1 - duplicate)]. *)
  max_delay : int;
      (** Max hold per copy, in delivery steps; 0 = deliverable at once. *)
  corrupt : float;  (** Per-copy single-bit-flip probability, in [\[0,1\]]. *)
  kill : float;  (** Per-send permanent edge-death probability, in [\[0,1\]]. *)
}

val reliable : plan
(** The all-zero plan: the paper's channel. *)

val plan :
  ?drop:float ->
  ?duplicate:float ->
  ?max_delay:int ->
  ?corrupt:float ->
  ?kill:float ->
  unit ->
  plan
(** [reliable] with the given fields overridden; validates ranges. *)

type t
(** An immutable fault specification: a plan per dense edge index plus a
    seed.  Start a fresh {!Instance} per run. *)

val none : t
(** No faults; the engine takes a fast path. *)

val create :
  ?drop:float ->
  ?duplicate:float ->
  ?max_delay:int ->
  ?corrupt:float ->
  ?kill:float ->
  seed:int ->
  unit ->
  t
(** Uniform plan on every edge.  All fields default to the reliable value. *)

val uniform : plan -> seed:int -> t

val per_edge : (int -> plan) -> seed:int -> t
(** [per_edge f ~seed] applies plan [f e] to dense edge index [e].  [f] is
    consulted once per edge per instance and must be pure. *)

val is_none : t -> bool

type copy_fate = { delay : int; flip_bit : bool }
(** One materialized copy: hold it [delay] delivery steps, and flip one
    random bit of its encoding iff [flip_bit]. *)

(** Mutable per-run state: per-edge PRNG streams, dead-edge set and fault
    counters.  The engine creates one per [run]. *)
module Instance : sig
  type faults := t
  type t

  val start : faults -> t

  val on_send : t -> edge:int -> copy_fate list
  (** Fates of the copies that actually enter the channel for one send on
      [edge]; [[]] means everything was lost (drop or dead edge).  Updates
      the counters. *)

  val corrupt_bit : t -> edge:int -> length_bits:int -> int
  (** Which bit of a [length_bits]-bit encoding to flip, uniform; drawn at
      delivery time because the wire length is unknown at send time.
      Requires [length_bits > 0]. *)

  val edge_dead : t -> edge:int -> bool

  val dead_edges : t -> int list
  (** Dense indices of edges killed so far, sorted. *)

  val dropped_copies : t -> int
  (** Copies lost to the drop coin or to a dead edge. *)

  val extra_copies : t -> int
  (** Duplicate copies materialized beyond the one original per send. *)

  val delayed_copies : t -> int
  (** Copies held for at least one step. *)
end
