(** Unambiguous fingerprints of global protocol configurations.

    A model-checking state is (per-vertex protocol states, visited flags,
    multiset of in-flight messages).  Two configurations reached along
    different interleavings are behaviorally equal iff these components
    agree — in particular the engine's send sequence numbers must {e not}
    enter the key, since independent deliveries permute them.  The builder
    below makes injectivity easy: every variable-length component is
    length-prefixed, so distinct component lists can never concatenate to
    the same key. *)

type t

val create : unit -> t
val add_string : t -> string -> unit
(** Length-prefixed: ["ab"+"c"] and ["a"+"bc"] produce different keys. *)

val add_int : t -> int -> unit
val add_bool : t -> bool -> unit
val add_bool_array : t -> bool array -> unit

val add_sorted_strings : t -> string list -> unit
(** Appends the count, then the elements in sorted order — the canonical
    form of a multiset of encoded messages. *)

val contents : t -> string

(** The visited-state table of the sleep-set search: each canonical key maps
    to the sleep sets under which the state has already been fully expanded.
    Re-expansion is skipped only when a {e stored} sleep set is a subset of
    the current one — the classical sound combination of sleep sets with
    state caching (a smaller sleep set explored strictly more, so its
    subtree subsumes the current visit). *)
module Memo : sig
  type key = string
  type t

  val create : unit -> t
  val size : t -> int

  val visit : t -> key -> string list list ref * bool
  (** [(stored, fresh)]: the stored sleep sets (mutable; extend via
      {!record}) and whether the key was never seen before. *)

  val covered : string list list ref -> string list -> bool
  (** Does some stored sleep set subset the given (sorted) one? *)

  val record : string list list ref -> string list -> unit
  (** Store a (sorted) sleep set the state is about to be expanded under,
      dropping stored supersets it makes redundant. *)
end
