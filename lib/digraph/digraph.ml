(** Directed anonymous networks: the graph model of Section 2 plus the
    paper's graph families and a Graphviz exporter.

    This module re-exports {!Graph} wholesale, so [Digraph.make],
    [Digraph.out_degree], ... are the primary API; the families live under
    {!Digraph.Families}. *)

include Graph

module Graph_sig = Graph_sig
module Families = Families
module Dot = Dot

(* [Graph] itself must satisfy the representation-agnostic query seam. *)
module _ : Graph_sig.S with type t = Graph.t = Graph
