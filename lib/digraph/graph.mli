(** Port-numbered directed multigraphs with a distinguished root [s] and
    terminal [t] — the networks of Section 2.

    Vertices are integers [0 .. n-1].  Each vertex orders its outgoing and
    incoming edges by *port*: a vertex can distinguish its ports but knows
    nothing else, which is exactly the information an anonymous protocol's
    [f] and [g] receive.  Multi-edges and self-loops are allowed. *)

type vertex = int

type t

val make : n:int -> s:vertex -> t:vertex -> (vertex * vertex) list -> t
(** [make ~n ~s ~t edges] builds the graph.  Out-ports (and in-ports) are
    numbered in the order edges appear in the list.
    @raise Invalid_argument on out-of-range endpoints. *)

val n_vertices : t -> int
val n_edges : t -> int
val source : t -> vertex
val terminal : t -> vertex

val out_degree : t -> vertex -> int
val in_degree : t -> vertex -> int

val out_neighbor : t -> vertex -> int -> vertex
(** [out_neighbor g v j] is the head of [v]'s [j]-th out-edge. *)

val iter_out : t -> vertex -> (int -> vertex -> unit) -> unit
(** [iter_out g v f] calls [f j head] for each out-port [j] of [v] in port
    order — the allocation-free replacement for walking [edges] or pairing
    ports by hand in hot loops. *)

val fold_out : t -> vertex -> init:'a -> ('a -> int -> vertex -> 'a) -> 'a
(** [fold_out g v ~init f] folds [f acc j head] over [v]'s out-ports in
    port order. *)

val in_origin : t -> vertex -> int -> vertex * int
(** [in_origin g v i] is [(u, j)]: [v]'s [i]-th in-edge is [u]'s [j]-th
    out-edge. *)

val out_port_target_port : t -> vertex -> int -> vertex * int
(** [out_port_target_port g u j] is [(v, i)]: [u]'s [j]-th out-edge lands on
    [v]'s [i]-th in-port. *)

val edges : t -> (vertex * vertex) list
(** In global edge-index order. *)

val edge_index : t -> vertex -> int -> int
(** Dense index in [\[0, n_edges)] for [u]'s [j]-th out-edge; used by the
    instrumentation to account per-edge traffic. *)

val edge_of_index : t -> int -> vertex * int

val max_out_degree : t -> int
(** The paper's [d_out]; at least 1 even for edgeless graphs so that
    [log d_out] factors are well-defined. *)

val vertices : t -> vertex list
val internal_vertices : t -> vertex list

(** {2 Structure queries} *)

val reachable_from_s : t -> bool array
val coreachable_to_t : t -> bool array

val all_reachable : t -> bool
(** Every vertex reachable from [s] (the paper's standing assumption). *)

val all_coreachable : t -> bool
(** Every vertex on a path to [t]: the condition under which the protocols
    must terminate (Theorems 3.1, 4.2, 5.1). *)

val is_dag : t -> bool
val topological_order : t -> vertex list option

val is_grounded_tree : t -> bool
(** Every vertex has in-degree 1, except [s] (in-degree 0) and [t]
    (unrestricted) — Section 1.1's definition. *)

val classify : t -> [ `Grounded_tree | `Dag | `General ]

val scc : t -> int array * int
(** Tarjan: [(comp, count)] with [comp.(v)] the component id of [v], ids in
    reverse topological order of the condensation. *)

val validate : ?allow_multi_root:bool -> t -> (unit, string) result
(** Checks the model's standing assumptions: [s] has in-degree 0 and
    out-degree 1, [t] has out-degree 0, [s <> t].  With
    [allow_multi_root:true] the root may have any positive out-degree —
    the Section 2 extension that the commodity protocols support by
    splitting the unit commodity over the root's ports. *)

val equal : t -> t -> bool
(** Structural equality including port numbering. *)

val transpose : t -> t
(** Reverse every edge and swap [s] and [t].  Out-port order of the result
    follows the original in-port order. *)

val induced_subgraph : t -> keep:bool array -> s:vertex -> t:vertex -> t
(** Restrict to the vertices with [keep] set (which must include the given
    [s] and [t]); vertices are renumbered densely, edge order preserved. *)

val condensation : t -> t * int array
(** The DAG of strongly connected components, with [s]/[t] mapped to their
    components; also returns the vertex-to-component map.  Multi-edges
    between components are kept (port structure is preserved in spirit:
    one edge per original cross-component edge). *)

val distances_from : t -> vertex -> int array
(** BFS hop distances; [-1] for unreachable vertices. *)

val longest_path_dag : t -> int
(** Number of edges on a longest path in a DAG.
    @raise Invalid_argument if the graph has a cycle. *)

val diameter_from_s : t -> int
(** Largest finite BFS distance from [s]. *)

val canonical_signature : t -> int * int * (int * int * int) list
(** Canonical form of the port-numbered network rooted at [s]: vertices are
    renamed in BFS discovery order following ports in order (the only
    port-respecting isomorphism candidate), and the result is
    [(reached_count, id of t, sorted (vertex, port, head) triples)].
    Two networks are port-isomorphic (rooted at [s], respecting [t]) iff
    their signatures are equal — the test the mapping protocol's output is
    checked with. *)

val isomorphic : t -> t -> bool
(** Equality of {!canonical_signature}s. *)

val pp : Format.formatter -> t -> unit
