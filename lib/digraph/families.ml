let comb n =
  if n < 1 then invalid_arg "Families.comb: n must be >= 1";
  let s = 0 and t = n + 1 in
  (* Port order per v_i: chain edge first, then the tooth to t. *)
  let edges =
    (s, 1)
    :: List.concat
         (List.init n (fun i ->
              let v = i + 1 in
              let tooth = (v, t) in
              if i < n - 1 then [ (v, v + 1); tooth ] else [ tooth ]))
  in
  Graph.make ~n:(n + 2) ~s ~t edges

let path n =
  if n < 1 then invalid_arg "Families.path: n must be >= 1";
  let s = 0 and t = n + 1 in
  let edges = (s, 1) :: List.init n (fun i -> (i + 1, if i = n - 1 then t else i + 2)) in
  Graph.make ~n:(n + 2) ~s ~t edges

let diamond () =
  (* s=0, a=1, b=2, c=3, d=4, t=5 *)
  Graph.make ~n:6 ~s:0 ~t:5 [ (0, 1); (1, 2); (1, 3); (2, 4); (3, 4); (4, 5) ]

(* Complete degree-d tree of the given height: node ids are assigned in BFS
   order starting from the root; [tree_size h d] nodes. *)
let tree_size height degree =
  let rec go acc level remaining =
    if remaining < 0 then acc else go (acc + level) (level * degree) (remaining - 1)
  in
  go 0 1 height

let full_tree ~height ~degree =
  if height < 1 || degree < 1 then invalid_arg "Families.full_tree";
  let nodes = tree_size height degree in
  let s = 0 and root = 1 in
  let t = nodes + 1 in
  (* Node v at BFS position p (root p=0); children of p are
     p*degree + 1 .. p*degree + degree; internal iff p < tree_size (height-1). *)
  let n_internal = tree_size (height - 1) degree in
  let edges = ref [ (s, root) ] in
  for p = 0 to nodes - 1 do
    if p < n_internal then
      for c = 1 to degree do
        edges := (root + p, root + (p * degree) + c) :: !edges
      done
    else edges := (root + p, t) :: !edges
  done;
  Graph.make ~n:(nodes + 2) ~s ~t (List.rev !edges)

let full_tree_leaf ~height ~degree ~path_ports =
  if List.length path_ports <> height then
    invalid_arg "Families.full_tree_leaf: path_ports length must equal height";
  let p =
    List.fold_left
      (fun p port ->
        if port < 0 || port >= degree then
          invalid_arg "Families.full_tree_leaf: port out of range";
        (p * degree) + 1 + port)
      0 path_ports
  in
  p + 1

let pruned_tree ~height ~degree =
  if height < 1 || degree < 1 then invalid_arg "Families.pruned_tree";
  let s = 0 in
  let u i = 1 + i in
  (* u_0 .. u_height on the surviving path; v = u_height. *)
  let t = height + 2 in
  let edges = ref [ (s, u 0) ] in
  for i = 0 to height - 1 do
    (* Port 0 continues the path (matching path_ports = all zeros in the full
       tree); the remaining degree-1 ports are rewired to t. *)
    edges := (u i, u (i + 1)) :: !edges;
    for _ = 2 to degree do
      edges := (u i, t) :: !edges
    done
  done;
  edges := (u height, t) :: !edges;
  Graph.make ~n:(height + 3) ~s ~t (List.rev !edges)

let pruned_tree_leaf ~height = height + 1

let skeleton ~n ~subset =
  if n < 1 then invalid_arg "Families.skeleton: n must be >= 1";
  if Array.length subset <> n then invalid_arg "Families.skeleton: subset length";
  let s = 0 in
  let v i = 1 + i in
  (* v_0 .. v_{2n-1} *)
  let u i = 1 + (2 * n) + i in
  (* u_0 .. u_{2n-2} *)
  let w = 1 + (2 * n) + (2 * n - 1) in
  let t = w + 1 in
  let edges = ref [ (s, v 0) ] in
  for i = 0 to (2 * n) - 2 do
    (* Port 0 = the "left" spine edge carrying the smaller quantity under the
       splitting rule; port 1 = the hang-off u_i. *)
    edges := (v i, v (i + 1)) :: !edges;
    edges := (v i, u i) :: !edges
  done;
  edges := (v ((2 * n) - 1), t) :: !edges;
  for i = 0 to (2 * n) - 2 do
    if i mod 2 = 1 then edges := (u i, t) :: !edges
    else begin
      let idx = i / 2 in
      if subset.(idx) then edges := (u i, w) :: !edges
      else edges := (u i, t) :: !edges
    end
  done;
  edges := (w, t) :: !edges;
  Graph.make ~n:(t + 1) ~s ~t (List.rev !edges)

let skeleton_w ~n = 1 + (2 * n) + (2 * n - 1)

let cycle_with_exit ~k =
  if k < 2 then invalid_arg "Families.cycle_with_exit: k must be >= 2";
  let s = 0 and t = k + 1 in
  let a i = 1 + ((i - 1) mod k) in
  (* Cycle a_1 -> a_2 -> ... -> a_k -> a_1; exit near the middle. *)
  let exit = 1 + (k / 2) in
  let edges =
    ((s, a 1) :: List.init k (fun i -> (a (i + 1), a (i + 2)))) @ [ (exit, t) ]
  in
  Graph.make ~n:(k + 2) ~s ~t edges

let figure_eight () =
  (* s=0; shared hub=1; loop A: 1->2->3->1; loop B: 1->4->5->1; 3->t. *)
  Graph.make ~n:7 ~s:0 ~t:6
    [ (0, 1); (1, 2); (2, 3); (3, 1); (1, 4); (4, 5); (5, 1); (3, 6) ]

let grid_dag ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Families.grid_dag";
  let s = 0 in
  let cell r c = 1 + (r * cols) + c in
  let t = 1 + (rows * cols) in
  let edges = ref [ (s, cell 0 0) ] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (cell r c, cell r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (cell r c, cell (r + 1) c) :: !edges;
      if c + 1 >= cols && r + 1 >= rows then edges := (cell r c, t) :: !edges
    done
  done;
  Graph.make ~n:(t + 1) ~s ~t (List.rev !edges)

(* Large layered DAG for throughput benchmarks, sized by edge count.  The
   shape is s -> hub -> L layers of [width] vertices -> t: the hub fans out
   to the whole first layer, vertex j of layer i always feeds vertex j of
   layer i+1 (so every vertex is reachable and co-reachable by
   construction), and [fan - 1] extra random forward edges per vertex supply
   the reconvergence.  Edge count lands within a few percent of
   [target_edges]. *)
let random_layered_large prng ~target_edges =
  if target_edges < 32 then
    invalid_arg "Families.random_layered_large: target_edges must be >= 32";
  let fan = 4 in
  let width =
    Stdlib.max 4 (int_of_float (sqrt (float_of_int target_edges /. float_of_int fan)))
  in
  (* 1 (s->hub) + width (hub->layer0) + (layers-1)*width*fan + width (->t). *)
  let layers =
    Stdlib.max 2 (1 + ((target_edges - 1 - (2 * width)) / (width * fan)))
  in
  let s = 0 and hub = 1 in
  let vertex layer j = 2 + (layer * width) + j in
  let t = 2 + (layers * width) in
  let edges = ref [ (s, hub) ] in
  for j = width - 1 downto 0 do
    edges := (hub, vertex 0 j) :: !edges
  done;
  for layer = 0 to layers - 2 do
    for j = 0 to width - 1 do
      (* The aligned spine edge first, then fan-1 random forward edges. *)
      edges := (vertex layer j, vertex (layer + 1) j) :: !edges;
      for _ = 2 to fan do
        edges := (vertex layer j, vertex (layer + 1) (Prng.int prng width)) :: !edges
      done
    done
  done;
  for j = 0 to width - 1 do
    edges := (vertex (layers - 1) j, t) :: !edges
  done;
  Graph.make ~n:(t + 1) ~s ~t (List.rev !edges)

let random_grounded_tree prng ~n ~t_edge_prob =
  if n < 1 then invalid_arg "Families.random_grounded_tree";
  let s = 0 and t = n + 1 in
  let children = Array.make (n + 1) 0 in
  let parent_edges = ref [] in
  for i = 2 to n do
    let p = Prng.int_in prng 1 (i - 1) in
    children.(p) <- children.(p) + 1;
    parent_edges := (p, i) :: !parent_edges
  done;
  let t_edges = ref [] in
  for v = 1 to n do
    if children.(v) = 0 || Prng.chance prng t_edge_prob then
      t_edges := (v, t) :: !t_edges
  done;
  Graph.make ~n:(n + 2) ~s ~t (((s, 1) :: List.rev !parent_edges) @ List.rev !t_edges)

let random_dag prng ~n ~extra_edges ~t_edge_prob =
  if n < 1 then invalid_arg "Families.random_dag";
  let s = 0 and t = n + 1 in
  let edges = ref [ (s, 1) ] in
  let out_count = Array.make (n + 1) 0 in
  for i = 2 to n do
    let p = Prng.int_in prng 1 (i - 1) in
    out_count.(p) <- out_count.(p) + 1;
    edges := (p, i) :: !edges
  done;
  for _ = 1 to extra_edges do
    if n >= 2 then begin
      let i = Prng.int_in prng 2 n in
      let j = Prng.int_in prng 1 (i - 1) in
      out_count.(j) <- out_count.(j) + 1;
      edges := (j, i) :: !edges
    end
  done;
  for v = 1 to n do
    if out_count.(v) = 0 || Prng.chance prng t_edge_prob then
      edges := (v, t) :: !edges
  done;
  Graph.make ~n:(n + 2) ~s ~t (List.rev !edges)

let random_digraph prng ~n ~extra_edges ~back_edges ~t_edge_prob =
  if n < 1 then invalid_arg "Families.random_digraph";
  let s = 0 and t = n + 1 in
  let edges = ref [ (s, 1) ] in
  let out_count = Array.make (n + 1) 0 in
  for i = 2 to n do
    let p = Prng.int_in prng 1 (i - 1) in
    out_count.(p) <- out_count.(p) + 1;
    edges := (p, i) :: !edges
  done;
  for _ = 1 to extra_edges do
    if n >= 2 then begin
      let i = Prng.int_in prng 2 n in
      let j = Prng.int_in prng 1 (i - 1) in
      out_count.(j) <- out_count.(j) + 1;
      edges := (j, i) :: !edges
    end
  done;
  for _ = 1 to back_edges do
    if n >= 2 then begin
      let i = Prng.int_in prng 2 n in
      let j = Prng.int_in prng 1 (i - 1) in
      (* Backward edge i -> j closes a cycle. *)
      out_count.(i) <- out_count.(i) + 1;
      edges := (i, j) :: !edges
    end
  done;
  for v = 1 to n do
    if out_count.(v) = 0 || Prng.chance prng t_edge_prob then
      edges := (v, t) :: !edges
  done;
  (* Back edges can close cycles with no exit; repair by wiring every vertex
     that cannot reach t straight to it, so the standing model assumption
     (all vertices on a path to t) holds. *)
  let g = Graph.make ~n:(n + 2) ~s ~t (List.rev !edges) in
  let coreach = Graph.coreachable_to_t g in
  let repairs = ref [] in
  for v = 1 to n do
    if not coreach.(v) then repairs := (v, t) :: !repairs
  done;
  if !repairs = [] then g
  else Graph.make ~n:(n + 2) ~s ~t (Graph.edges g @ List.rev !repairs)

(* Build the bidirected embedding from an undirected edge list over internal
   vertices 1..n.  Inserting both directions of each undirected edge
   consecutively keeps every internal vertex's out-port and in-port counts in
   lock-step, which is exactly the port-alignment property the undirected
   baseline protocol relies on; s's edge and the t-edges are appended last so
   they occupy the trailing ports. *)
let bidirected_of_undirected ~n undirected =
  let s = 0 and t = n + 1 in
  let both = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) undirected in
  let t_edges = List.init n (fun i -> (i + 1, t)) in
  Graph.make ~n:(n + 2) ~s ~t (both @ ((s, 1) :: t_edges))

let bidirected_random prng ~n ~extra_edges =
  if n < 1 then invalid_arg "Families.bidirected_random";
  let undirected = ref [] in
  for i = 2 to n do
    undirected := (Prng.int_in prng 1 (i - 1), i) :: !undirected
  done;
  for _ = 1 to extra_edges do
    if n >= 2 then begin
      let u = Prng.int_in prng 1 n in
      let v = Prng.int_in prng 1 n in
      if u <> v then undirected := (u, v) :: !undirected
    end
  done;
  bidirected_of_undirected ~n (List.rev !undirected)

let bidirected_ring ~n =
  if n < 1 then invalid_arg "Families.bidirected_ring";
  let undirected =
    if n = 1 then []
    else if n = 2 then [ (1, 2) ]
    else List.init (n - 1) (fun i -> (i + 1, i + 2)) @ [ (n, 1) ]
  in
  bidirected_of_undirected ~n undirected

let widen_root prng g ~extra =
  let s = Graph.source g and t = Graph.terminal g in
  let candidates =
    List.filter (fun v -> v <> s && v <> t) (Graph.vertices g)
  in
  if candidates = [] then g
  else begin
    let new_edges =
      List.init extra (fun _ -> (s, Prng.pick_list prng candidates))
    in
    Graph.make ~n:(Graph.n_vertices g) ~s ~t (Graph.edges g @ new_edges)
  end

let add_trap g ~from_vertex =
  let n = Graph.n_vertices g in
  Graph.make ~n:(n + 1) ~s:(Graph.source g) ~t:(Graph.terminal g)
    (Graph.edges g @ [ (from_vertex, n) ])

let add_trap_cycle g ~from_vertex =
  let n = Graph.n_vertices g in
  Graph.make ~n:(n + 2) ~s:(Graph.source g) ~t:(Graph.terminal g)
    (Graph.edges g @ [ (from_vertex, n); (n, n + 1); (n + 1, n) ])

(* {1 Dynamic scenarios} *)

type dyn_event = { de_edge : int; de_at : int; de_down_for : int option }

(* A random digraph plus a churn script over it.  The cycle-closing back
   edges are the *added* ones: absent when the run starts, appearing at a
   scripted offer — the Austin et al. edge-insertion scenario (a DAG-quiet
   amnesiac flood goes non-terminating the moment a cycle edge appears).
   Removal events land on uniformly random edges.  [Runtime.Churn.of_dynamic]
   turns the script into an engine-ready spec. *)
let random_dynamic prng ~n ~extra_edges ~back_edges ~t_edge_prob
    ?(removals = 4) ?(max_at = 4) ?(max_down = 3) () =
  if n < 2 then invalid_arg "Families.random_dynamic: n must be >= 2";
  let s = 0 and t = n + 1 in
  let edges = ref [ (s, 1) ] in
  let out_count = Array.make (n + 1) 0 in
  for i = 2 to n do
    let p = Prng.int_in prng 1 (i - 1) in
    out_count.(p) <- out_count.(p) + 1;
    edges := (p, i) :: !edges
  done;
  for _ = 1 to extra_edges do
    let i = Prng.int_in prng 2 n in
    let j = Prng.int_in prng 1 (i - 1) in
    out_count.(j) <- out_count.(j) + 1;
    edges := (j, i) :: !edges
  done;
  let back = ref [] in
  for _ = 1 to back_edges do
    let i = Prng.int_in prng 2 n in
    let j = Prng.int_in prng 1 (i - 1) in
    out_count.(i) <- out_count.(i) + 1;
    edges := (i, j) :: !edges;
    back := (i, j) :: !back
  done;
  for v = 1 to n do
    if out_count.(v) = 0 || Prng.chance prng t_edge_prob then
      edges := (v, t) :: !edges
  done;
  let g = Graph.make ~n:(n + 2) ~s ~t (List.rev !edges) in
  (* Dense index of a (u, v) pair, skipping indices already claimed so
     parallel back edges each get their own event. *)
  let used = Hashtbl.create 8 in
  let dense (u, v) =
    let found = ref None in
    for j = 0 to Graph.out_degree g u - 1 do
      if !found = None then begin
        let w, _ = Graph.out_port_target_port g u j in
        let e = Graph.edge_index g u j in
        if w = v && not (Hashtbl.mem used e) then begin
          Hashtbl.add used e ();
          found := Some e
        end
      end
    done;
    !found
  in
  let adds =
    List.filter_map
      (fun uv ->
        match dense uv with
        | None -> None
        | Some e ->
            Some { de_edge = e; de_at = 1 + Prng.int prng max_at; de_down_for = None })
      (List.rev !back)
  in
  let ne = Graph.n_edges g in
  let removes =
    List.init removals (fun _ ->
        {
          de_edge = Prng.int prng ne;
          de_at = 1 + Prng.int prng max_at;
          de_down_for = Some (Prng.int prng (max_down + 1));
        })
  in
  (g, adds @ removes)

(* {1 Family specifications}

   One textual grammar for naming a family instance — shared by the CLI's
   [--family] converter and the serving layer's graph table, so a spec that
   works on the command line is exactly what a server config or a [submit]
   request may use. *)

let spec_doc =
  "comb:N | path:N | diamond | fig8 | cycle:K | grid:RxC | full-tree:H:D | \
   pruned:H:D | skeleton:N | random-tree:N:SEED | random-dag:N:SEED | \
   random:N:SEED | layered:EDGES[:SEED] | ring:N | bidirected:N:SEED; \
   append '+trap' to hang a trap vertex off the first internal vertex"

let of_spec spec =
  let spec, trap =
    match String.index_opt spec '+' with
    | Some i when String.sub spec i (String.length spec - i) = "+trap" ->
        (String.sub spec 0 i, true)
    | _ -> (spec, false)
  in
  let parts = String.split_on_char ':' spec in
  let int s = int_of_string_opt s in
  let base =
    match parts with
    | [ "comb"; n ] -> Option.map comb (int n)
    | [ "path"; n ] -> Option.map path (int n)
    | [ "diamond" ] -> Some (diamond ())
    | [ "fig8" ] -> Some (figure_eight ())
    | [ "cycle"; k ] -> Option.map (fun k -> cycle_with_exit ~k) (int k)
    | [ "grid"; rc ] -> (
        match String.split_on_char 'x' rc with
        | [ r; c ] -> (
            match (int r, int c) with
            | Some rows, Some cols -> Some (grid_dag ~rows ~cols)
            | _ -> None)
        | _ -> None)
    | [ "full-tree"; h; d ] -> (
        match (int h, int d) with
        | Some height, Some degree -> Some (full_tree ~height ~degree)
        | _ -> None)
    | [ "pruned"; h; d ] -> (
        match (int h, int d) with
        | Some height, Some degree -> Some (pruned_tree ~height ~degree)
        | _ -> None)
    | [ "skeleton"; n ] ->
        Option.map (fun n -> skeleton ~n ~subset:(Array.make n true)) (int n)
    | [ "random-tree"; n; seed ] -> (
        match (int n, int seed) with
        | Some n, Some seed ->
            Some (random_grounded_tree (Prng.create seed) ~n ~t_edge_prob:0.3)
        | _ -> None)
    | [ "random-dag"; n; seed ] -> (
        match (int n, int seed) with
        | Some n, Some seed ->
            Some (random_dag (Prng.create seed) ~n ~extra_edges:n ~t_edge_prob:0.2)
        | _ -> None)
    | [ "random"; n; seed ] -> (
        match (int n, int seed) with
        | Some n, Some seed ->
            Some
              (random_digraph (Prng.create seed) ~n ~extra_edges:n
                 ~back_edges:(n / 4) ~t_edge_prob:0.2)
        | _ -> None)
    | [ "layered"; e ] ->
        Option.map
          (fun e -> random_layered_large (Prng.create 42) ~target_edges:e)
          (int e)
    | [ "layered"; e; seed ] -> (
        match (int e, int seed) with
        | Some e, Some seed ->
            Some (random_layered_large (Prng.create seed) ~target_edges:e)
        | _ -> None)
    | [ "ring"; n ] -> Option.map (fun n -> bidirected_ring ~n) (int n)
    | [ "bidirected"; n; seed ] -> (
        match (int n, int seed) with
        | Some n, Some seed ->
            Some (bidirected_random (Prng.create seed) ~n ~extra_edges:n)
        | _ -> None)
    | _ -> None
  in
  match base with
  | None -> Error (Printf.sprintf "cannot parse family %S" spec)
  | Some g ->
      Ok
        (if trap then
           match Graph.internal_vertices g with
           | v :: _ -> add_trap g ~from_vertex:v
           | [] -> g
         else g)
