type vertex = int

type t = {
  n : int;
  s : vertex;
  t : vertex;
  out_adj : vertex array array;
  (* in_adj.(v).(i) = (u, j): v's i-th in-edge is u's j-th out-edge. *)
  in_adj : (vertex * int) array array;
  (* Dense edge numbering: edge_base.(u) + j indexes u's j-th out-edge. *)
  edge_base : int array;
  n_edges : int;
}

let make ~n ~s ~t edge_list =
  if n < 2 then invalid_arg "Graph.make: need at least s and t";
  if s < 0 || s >= n || t < 0 || t >= n then invalid_arg "Graph.make: s/t out of range";
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.make: edge endpoint out of range")
    edge_list;
  let out_lists = Array.make n [] in
  let in_lists = Array.make n [] in
  (* First pass assigns out-ports in list order. *)
  let out_count = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      let j = out_count.(u) in
      out_count.(u) <- j + 1;
      out_lists.(u) <- v :: out_lists.(u);
      in_lists.(v) <- (u, j) :: in_lists.(v))
    edge_list;
  let out_adj = Array.map (fun l -> Array.of_list (List.rev l)) out_lists in
  let in_adj = Array.map (fun l -> Array.of_list (List.rev l)) in_lists in
  let edge_base = Array.make n 0 in
  let total = ref 0 in
  for v = 0 to n - 1 do
    edge_base.(v) <- !total;
    total := !total + Array.length out_adj.(v)
  done;
  { n; s; t; out_adj; in_adj; edge_base; n_edges = !total }

let n_vertices g = g.n
let n_edges g = g.n_edges
let source g = g.s
let terminal g = g.t

let out_degree g v = Array.length g.out_adj.(v)
let in_degree g v = Array.length g.in_adj.(v)
let out_neighbor g v j = g.out_adj.(v).(j)
let in_origin g v i = g.in_adj.(v).(i)

let iter_out g v f =
  let a = g.out_adj.(v) in
  for j = 0 to Array.length a - 1 do
    f j (Array.unsafe_get a j)
  done

let fold_out g v ~init f =
  let a = g.out_adj.(v) in
  let acc = ref init in
  for j = 0 to Array.length a - 1 do
    acc := f !acc j (Array.unsafe_get a j)
  done;
  !acc

let out_port_target_port g u j =
  let v = g.out_adj.(u).(j) in
  (* Find which in-port of v corresponds to (u, j). *)
  let rec find i =
    if i >= Array.length g.in_adj.(v) then
      invalid_arg "Graph.out_port_target_port: inconsistent adjacency"
    else begin
      let u', j' = g.in_adj.(v).(i) in
      if u' = u && j' = j then (v, i) else find (i + 1)
    end
  in
  find 0

let edges g =
  List.concat_map
    (fun u -> Array.to_list (Array.map (fun v -> (u, v)) g.out_adj.(u)))
    (List.init g.n (fun v -> v))

let edge_index g u j = g.edge_base.(u) + j

let edge_of_index g idx =
  if idx < 0 || idx >= g.n_edges then invalid_arg "Graph.edge_of_index";
  (* Binary search over edge_base. *)
  let lo = ref 0 and hi = ref (g.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if g.edge_base.(mid) <= idx then lo := mid else hi := mid - 1
  done;
  (!lo, idx - g.edge_base.(!lo))

let max_out_degree g =
  Array.fold_left (fun acc a -> max acc (Array.length a)) 1 g.out_adj

let vertices g = List.init g.n (fun v -> v)

let internal_vertices g =
  List.filter (fun v -> v <> g.s && v <> g.t) (vertices g)

let bfs_forward g start =
  let seen = Array.make g.n false in
  let q = Queue.create () in
  seen.(start) <- true;
  Queue.add start q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.add w q
        end)
      g.out_adj.(v)
  done;
  seen

let reachable_from_s g = bfs_forward g g.s

let coreachable_to_t g =
  let seen = Array.make g.n false in
  let q = Queue.create () in
  seen.(g.t) <- true;
  Queue.add g.t q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun (u, _) ->
        if not seen.(u) then begin
          seen.(u) <- true;
          Queue.add u q
        end)
      g.in_adj.(v)
  done;
  seen

let all_reachable g = Array.for_all (fun b -> b) (reachable_from_s g)
let all_coreachable g = Array.for_all (fun b -> b) (coreachable_to_t g)

let topological_order g =
  (* Kahn's algorithm. *)
  let indeg = Array.make g.n 0 in
  Array.iter (Array.iter (fun v -> indeg.(v) <- indeg.(v) + 1)) g.out_adj;
  let q = Queue.create () in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Queue.add v q
  done;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    incr seen;
    order := v :: !order;
    Array.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w q)
      g.out_adj.(v)
  done;
  if !seen = g.n then Some (List.rev !order) else None

let is_dag g = topological_order g <> None

let is_grounded_tree g =
  in_degree g g.s = 0
  && List.for_all (fun v -> in_degree g v = 1) (internal_vertices g)

let classify g =
  if is_grounded_tree g && is_dag g then `Grounded_tree
  else if is_dag g then `Dag
  else `General

let scc g =
  (* Tarjan with an explicit frame stack instead of recursion: each frame is
     (vertex, next out-port to look at), so graphs with million-edge paths do
     not overflow the OCaml call stack. *)
  let index = Array.make g.n (-1) in
  let lowlink = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let comp = Array.make g.n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 and next_comp = ref 0 in
  let discover v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    Stack.push v stack;
    on_stack.(v) <- true
  in
  let finish v =
    if lowlink.(v) = index.(v) then begin
      let continue = ref true in
      while !continue do
        let w = Stack.pop stack in
        on_stack.(w) <- false;
        comp.(w) <- !next_comp;
        if w = v then continue := false
      done;
      incr next_comp
    end
  in
  let frames = Stack.create () in
  let strongconnect root =
    discover root;
    Stack.push (root, 0) frames;
    while not (Stack.is_empty frames) do
      let v, i = Stack.pop frames in
      if i < Array.length g.out_adj.(v) then begin
        Stack.push (v, i + 1) frames;
        let w = g.out_adj.(v).(i) in
        if index.(w) = -1 then begin
          discover w;
          Stack.push (w, 0) frames
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
      end
      else begin
        finish v;
        match Stack.top_opt frames with
        | Some (p, _) -> lowlink.(p) <- min lowlink.(p) lowlink.(v)
        | None -> ()
      end
    done
  in
  for v = 0 to g.n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  (comp, !next_comp)

let validate ?(allow_multi_root = false) g =
  if g.s = g.t then Error "s and t must be distinct"
  else if in_degree g g.s <> 0 then Error "root s must have no incoming edges"
  else if (not allow_multi_root) && out_degree g g.s <> 1 then
    Error "root s must have exactly one outgoing edge"
  else if allow_multi_root && out_degree g g.s < 1 then
    Error "root s must have at least one outgoing edge"
  else if out_degree g g.t <> 0 then Error "terminal t must have no outgoing edges"
  else Ok ()

let equal a b =
  a.n = b.n && a.s = b.s && a.t = b.t && a.out_adj = b.out_adj

let transpose g =
  let edges =
    List.concat_map
      (fun v ->
        List.init (in_degree g v) (fun i ->
            let u, _ = g.in_adj.(v).(i) in
            (v, u)))
      (vertices g)
  in
  make ~n:g.n ~s:g.t ~t:g.s edges

let induced_subgraph g ~keep ~s ~t =
  if Array.length keep <> g.n then invalid_arg "Graph.induced_subgraph: keep size";
  if not (keep.(s) && keep.(t)) then
    invalid_arg "Graph.induced_subgraph: must keep s and t";
  let remap = Array.make g.n (-1) in
  let next = ref 0 in
  for v = 0 to g.n - 1 do
    if keep.(v) then begin
      remap.(v) <- !next;
      incr next
    end
  done;
  let edges =
    List.filter_map
      (fun (u, v) -> if keep.(u) && keep.(v) then Some (remap.(u), remap.(v)) else None)
      (edges g)
  in
  make ~n:!next ~s:remap.(s) ~t:remap.(t) edges

let condensation g =
  let comp, count = scc g in
  let cross =
    List.filter_map
      (fun (u, v) -> if comp.(u) <> comp.(v) then Some (comp.(u), comp.(v)) else None)
      (edges g)
  in
  (make ~n:count ~s:comp.(g.s) ~t:comp.(g.t) cross, comp)

let distances_from g start =
  let dist = Array.make g.n (-1) in
  let q = Queue.create () in
  dist.(start) <- 0;
  Queue.add start q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun w ->
        if dist.(w) = -1 then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w q
        end)
      g.out_adj.(v)
  done;
  dist

let diameter_from_s g =
  Array.fold_left Stdlib.max 0 (distances_from g g.s)

let longest_path_dag g =
  match topological_order g with
  | None -> invalid_arg "Graph.longest_path_dag: graph has a cycle"
  | Some order ->
      let best = Array.make g.n 0 in
      List.iter
        (fun v ->
          Array.iter
            (fun w -> if best.(v) + 1 > best.(w) then best.(w) <- best.(v) + 1)
            g.out_adj.(v))
        order;
      Array.fold_left Stdlib.max 0 best

let canonical_signature g =
  let id = Array.make g.n (-1) in
  let next = ref 0 in
  let assign v =
    if id.(v) = -1 then begin
      id.(v) <- !next;
      incr next
    end
  in
  let q = Queue.create () in
  assign g.s;
  Queue.add g.s q;
  let edges = ref [] in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iteri
      (fun j w ->
        if id.(w) = -1 then begin
          assign w;
          Queue.add w q
        end;
        edges := (id.(v), j, id.(w)) :: !edges)
      g.out_adj.(v)
  done;
  (!next, id.(g.t), List.sort Stdlib.compare !edges)

let isomorphic a b = canonical_signature a = canonical_signature b

let pp fmt g =
  Format.fprintf fmt "@[<v>digraph: %d vertices, %d edges, s=%d, t=%d@," g.n
    g.n_edges g.s g.t;
  List.iter
    (fun u ->
      if out_degree g u > 0 then
        Format.fprintf fmt "  %d -> %s@," u
          (String.concat ", "
             (Array.to_list (Array.map string_of_int g.out_adj.(u)))))
    (vertices g);
  Format.fprintf fmt "@]"
