(** Graph families: the paper's lower-bound constructions and the synthetic
    workloads used by the experiment harness.

    Every function returns a network satisfying the model of Section 2 ([s]
    with in-degree 0 / out-degree 1, [t] with out-degree 0) unless explicitly
    stated (the [add_trap]/[add_trap_cycle] transformers intentionally break
    co-reachability to exercise the non-termination guarantee). *)

val comb : int -> Graph.t
(** [comb n] is the grounded tree [G_n] of Theorem 3.2 / Figure 5:
    [s -> v_1 -> ... -> v_n], plus [v_i -> t] for every [i].  [n+2] vertices,
    [2n] edges; forces any broadcasting protocol to use at least [n+1]
    distinct symbols. *)

val path : int -> Graph.t
(** [s -> v_1 -> ... -> v_n -> t]. *)

val diamond : unit -> Graph.t
(** Smallest reconverging DAG: [s -> a], [a -> b], [a -> c], [b -> d],
    [c -> d], [d -> t]. *)

val full_tree : height:int -> degree:int -> Graph.t
(** Figure 6(a): [s] feeding a complete [degree]-ary tree of the given
    height; every leaf points to [t].  Used by the label lower bound
    (Theorem 5.2). *)

val full_tree_leaf : height:int -> degree:int -> path_ports:int list -> Graph.vertex
(** The leaf of {!full_tree} reached from the root by taking the given child
    port at each level.  [path_ports] must have length [height]. *)

val pruned_tree : height:int -> degree:int -> Graph.t
(** Figure 6(b): the pruned graph of Theorem 5.2 — the root-to-leaf path
    survives; all other child edges are rewired to [t].  [height + 3]
    vertices, yet the surviving leaf receives the same
    [Omega(height * log degree)]-bit label as in the full tree. *)

val pruned_tree_leaf : height:int -> Graph.vertex
(** The surviving leaf [v] of {!pruned_tree}. *)

val skeleton : n:int -> subset:bool array -> Graph.t
(** Figure 4: the commodity-preserving lower-bound family (Theorem 3.8).
    A splitting spine [v_0 .. v_{2n-1}] with hang-off vertices
    [u_0 .. u_{2n-2}]; odd [u_i] go to [t]; even [u_{2i}] go to the collector
    [w] when [subset.(i)] is set, else to [t].  [subset] must have length
    [n].  Across the [2^n] subset choices the quantity entering [t] from [w]
    takes [2^n] distinct values. *)

val skeleton_w : n:int -> Graph.vertex
(** The collector vertex [w] of {!skeleton}. *)

val cycle_with_exit : k:int -> Graph.t
(** [s] enters a directed [k]-cycle; one cycle vertex exits to [t].  The
    minimal workload that exercises the beta (cycle-detection) machinery of
    Section 4. *)

val figure_eight : unit -> Graph.t
(** Two cycles sharing a vertex, single exit to [t]; nested cycle stress. *)

val grid_dag : rows:int -> cols:int -> Graph.t
(** [rows x cols] grid, edges right and down; heavy path reconvergence. *)

val random_layered_large : Prng.t -> target_edges:int -> Graph.t
(** Large layered DAG sized by edge count, for throughput benchmarks:
    [s -> hub], the hub feeding every vertex of the first layer, square-ish
    layers connected forward (one aligned spine edge per vertex plus random
    reconverging edges), the last layer feeding [t].  Every vertex is
    reachable from [s] and co-reachable to [t] by construction, and the edge
    count lands within a few percent of [target_edges] (which must be
    [>= 32]). *)

val random_grounded_tree : Prng.t -> n:int -> t_edge_prob:float -> Graph.t
(** Uniform random recursive tree over [n] internal vertices; every leaf and
    (with the given probability) every internal vertex also points to [t]. *)

val random_dag : Prng.t -> n:int -> extra_edges:int -> t_edge_prob:float -> Graph.t
(** Connected random DAG on [n] internal vertices: a random spanning
    arborescence plus [extra_edges] forward edges. *)

val random_digraph :
  Prng.t -> n:int -> extra_edges:int -> back_edges:int -> t_edge_prob:float -> Graph.t
(** {!random_dag} plus [back_edges] backward edges, creating cycles. *)

val bidirected_random : Prng.t -> n:int -> extra_edges:int -> Graph.t
(** An {e undirected} anonymous network embedded in the directed model, for
    the conclusion's gap comparison: internal vertices [1..n] form a random
    connected undirected graph represented by edge pairs with {e aligned
    ports} (vertex [v]'s bidirected out-port [j] and in-port [j] connect to
    the same neighbour, so a vertex can reply over the edge a message came
    from — the feedback directed networks lack).  Then [s -> 1], and every
    internal vertex's {e last} out-port goes to [t].  Used by
    {!Anonet.Undirected_labeling}. *)

val bidirected_ring : n:int -> Graph.t
(** Deterministic instance of the same shape: internal vertices on an
    undirected cycle. *)

val widen_root : Prng.t -> Graph.t -> extra:int -> Graph.t
(** Adds [extra] out-edges from the root to random internal vertices — the
    multi-out-degree-root extension of Section 2 (the result no longer
    passes the strict {!Graph.validate}, use [~allow_multi_root:true]). *)

val add_trap : Graph.t -> from_vertex:Graph.vertex -> Graph.t
(** Appends a sink vertex reachable from [from_vertex] but not connected to
    [t]: the protocols must then never terminate. *)

val add_trap_cycle : Graph.t -> from_vertex:Graph.vertex -> Graph.t
(** Appends a two-vertex cycle with no exit, reachable from [from_vertex]:
    non-termination despite the cycle being beta-detected locally. *)

(** {1 Dynamic scenarios} *)

type dyn_event = {
  de_edge : int;  (** Dense edge index in the base graph. *)
  de_at : int;  (** Offer position on the edge's local clock, 1-based. *)
  de_down_for : int option;
      (** [Some k]: a removal swallowing [1 + k] offers; [None]: the edge is
          absent at the start and appears at its [de_at]-th offer. *)
}

val random_dynamic :
  Prng.t ->
  n:int ->
  extra_edges:int ->
  back_edges:int ->
  t_edge_prob:float ->
  ?removals:int ->
  ?max_at:int ->
  ?max_down:int ->
  unit ->
  Graph.t * dyn_event list
(** A random digraph together with a churn script over it: the [back_edges]
    cycle-closing edges start {e absent} and are inserted at a random offer
    (the amnesiac-flooding breakage scenario), plus [removals] random
    bounded outages.  Defaults: [removals = 4], [max_at = 4], [max_down = 3].
    Deterministic from the PRNG state; feed the script to
    [Runtime.Churn.of_dynamic]. *)

(** {1 Family specifications} *)

val spec_doc : string
(** Human-readable grammar summary of {!of_spec}, for CLI help strings. *)

val of_spec : string -> (Graph.t, string) result
(** Parse a textual family spec — ["comb:32"], ["random:50:7"],
    ["grid:4x5"], ["layered:20000:3"], ["cycle:5+trap"], ... — into the
    graph it names.  Randomized families embed their PRNG seed in the spec,
    so a spec is a complete, reproducible name for one instance: the same
    string always yields the same graph.  This is the grammar behind the
    CLI's [--family] and the serving layer's graph table. *)
