(** The query surface of a port-numbered directed anonymous network,
    abstracted over the representation.

    {!Graph} (pointer-y adjacency arrays, cheap to build incrementally) and
    [Flatcore.Graph] (compressed-sparse-row int arrays, built once and
    cache-friendly to traverse) both satisfy [S] — the NetCore-style
    module-type seam that lets engines and analyses swap the layout without
    touching call sites.  Everything from {!Graph} except [make] is here:
    construction is representation-specific, queries are not. *)

module type S = sig
  type vertex = int
  type t

  val n_vertices : t -> int
  val n_edges : t -> int
  val source : t -> vertex
  val terminal : t -> vertex
  val out_degree : t -> vertex -> int
  val in_degree : t -> vertex -> int
  val out_neighbor : t -> vertex -> int -> vertex
  val in_origin : t -> vertex -> int -> vertex * int
  val out_port_target_port : t -> vertex -> int -> vertex * int
  val iter_out : t -> vertex -> (int -> vertex -> unit) -> unit
  val fold_out : t -> vertex -> init:'a -> ('a -> int -> vertex -> 'a) -> 'a
  val edges : t -> (vertex * vertex) list
  val edge_index : t -> vertex -> int -> int
  val edge_of_index : t -> int -> vertex * int
  val max_out_degree : t -> int
  val vertices : t -> vertex list
  val internal_vertices : t -> vertex list
  val reachable_from_s : t -> bool array
  val coreachable_to_t : t -> bool array
  val all_reachable : t -> bool
  val all_coreachable : t -> bool
  val is_dag : t -> bool
  val topological_order : t -> vertex list option
  val is_grounded_tree : t -> bool
  val classify : t -> [ `Grounded_tree | `Dag | `General ]
  val scc : t -> int array * int
  val validate : ?allow_multi_root:bool -> t -> (unit, string) result
  val equal : t -> t -> bool
  val distances_from : t -> vertex -> int array
  val longest_path_dag : t -> int
  val diameter_from_s : t -> int
  val canonical_signature : t -> int * int * (int * int * int) list
  val isomorphic : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
