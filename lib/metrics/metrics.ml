let mean = function
  | [] -> invalid_arg "Metrics.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let variance = function
  | [] -> invalid_arg "Metrics.variance: empty"
  | xs ->
      let m = mean xs in
      mean (List.map (fun x -> (x -. m) ** 2.0) xs)

let stddev xs = sqrt (variance xs)

(* Linear-interpolation percentile over an already-sorted array, so that one
   sort can serve any number of cut points.  The rank is clamped to
   [0, n-1]: at [p = 100.0] the exact rank sits on the last index, where
   any upward rounding in [p /. 100.0 *. _] would otherwise index one past
   the end, and the [n = 1] case has no interval to interpolate over. *)
let percentile_of_sorted a p =
  if p < 0.0 || p > 100.0 then invalid_arg "Metrics.percentile: p out of range";
  let n = Array.length a in
  if n = 0 then invalid_arg "Metrics.percentile: empty"
  else if n = 1 then a.(0)
  else begin
    let rank =
      Float.min (float_of_int (n - 1))
        (Float.max 0.0 (p /. 100.0 *. float_of_int (n - 1)))
    in
    let lo = Stdlib.min (n - 1) (Stdlib.max 0 (int_of_float (Float.floor rank))) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end

let percentiles ps = function
  | [] -> invalid_arg "Metrics.percentiles: empty"
  | xs ->
      let a = Array.of_list (List.sort Float.compare xs) in
      List.map (percentile_of_sorted a) ps

let percentile p = function
  | [] -> invalid_arg "Metrics.percentile: empty"
  | xs -> (
      match percentiles [ p ] xs with [ v ] -> v | _ -> assert false)

let median xs = percentile 50.0 xs

type fit = { slope : float; intercept : float; r2 : float }

let linear_fit pts =
  let n = List.length pts in
  if n < 2 then invalid_arg "Metrics.linear_fit: need at least two points";
  let xs = List.map fst pts and ys = List.map snd pts in
  let mx = mean xs and my = mean ys in
  let sxx = List.fold_left (fun acc x -> acc +. ((x -. mx) ** 2.0)) 0.0 xs in
  if sxx = 0.0 then invalid_arg "Metrics.linear_fit: x values are all equal";
  let sxy =
    List.fold_left (fun acc (x, y) -> acc +. ((x -. mx) *. (y -. my))) 0.0 pts
  in
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let ss_tot = List.fold_left (fun acc y -> acc +. ((y -. my) ** 2.0)) 0.0 ys in
  let ss_res =
    List.fold_left
      (fun acc (x, y) -> acc +. ((y -. (intercept +. (slope *. x))) ** 2.0))
      0.0 pts
  in
  let r2 = if ss_tot = 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r2 }

let loglog_fit pts =
  if List.exists (fun (x, y) -> x <= 0.0 || y <= 0.0) pts then
    invalid_arg "Metrics.loglog_fit: needs positive coordinates";
  linear_fit (List.map (fun (x, y) -> (log x, log y)) pts)

let growth_ratio pts =
  if List.length pts < 2 then invalid_arg "Metrics.growth_ratio: need two points";
  let rec ratios acc = function
    | (_, y1) :: ((_, y2) :: _ as rest) -> ratios ((y2 /. y1) :: acc) rest
    | _ -> acc
  in
  mean (ratios [] pts)
