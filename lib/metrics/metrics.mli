(** Small statistics toolkit for the experiment harness.

    The paper states asymptotic bounds; the benches check them by fitting
    power laws to measured series — [loglog_fit] estimates the exponent of
    [y ~ c * x^k] so EXPERIMENTS.md can report "measured exponent 1.08 vs
    predicted 1" instead of eyeballing columns. *)

val mean : float list -> float
(** @raise Invalid_argument on an empty list. *)

val variance : float list -> float
(** Population variance. *)

val stddev : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], linear interpolation.
    @raise Invalid_argument on an empty list or out-of-range [p]. *)

val percentiles : float list -> float list -> float list
(** [percentiles ps xs] is [List.map (fun p -> percentile p xs) ps] but sorts
    [xs] only once — use it when reporting several cut points of one series.
    @raise Invalid_argument on an empty [xs] or any out-of-range [p]. *)

val median : float list -> float

type fit = {
  slope : float;
  intercept : float;
  r2 : float;  (** Coefficient of determination. *)
}

val linear_fit : (float * float) list -> fit
(** Ordinary least squares on [(x, y)] pairs.
    @raise Invalid_argument with fewer than two distinct x values. *)

val loglog_fit : (float * float) list -> fit
(** OLS in log-log space: [slope] estimates the power-law exponent.
    Points with non-positive coordinates are rejected. *)

val growth_ratio : (float * float) list -> float
(** Average ratio [y_{i+1}/y_i] between consecutive measurements; a quick
    doubling-behaviour summary.  Requires at least two points. *)
