module C = Runtime.Campaign

let run ?domains ?step_limit ?max_shrinks ~runners ~graphs ~grid ~seeds () =
  (* Job order = the sequential sweep's nesting order (runner, graph,
     point), so merging in job order reproduces its result lists exactly. *)
  let jobs =
    List.concat_map
      (fun r ->
        List.concat_map
          (fun g -> List.map (fun p -> (r, g, p)) grid)
          graphs)
      runners
  in
  let partials =
    Pool.map_list ?domains
      (fun (r, g, p) ->
        C.run ?step_limit ?max_shrinks ~runners:[ r ] ~graphs:[ g ]
          ~grid:[ p ] ~seeds ())
      jobs
  in
  {
    C.cells = List.concat_map (fun (r : C.result) -> r.cells) partials;
    violations = List.concat_map (fun (r : C.result) -> r.violations) partials;
    starvations =
      List.concat_map (fun (r : C.result) -> r.starvations) partials;
  }
