type 'a t = 'a list Atomic.t

let create () = Atomic.make []

let rec push t x =
  let old = Atomic.get t in
  if not (Atomic.compare_and_set t old (x :: old)) then push t x

let take_all t = Atomic.exchange t []

let is_empty t = Atomic.get t == []
