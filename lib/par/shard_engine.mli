(** Multicore execution of an anonymous protocol: the sequential
    {!Runtime.Engine} semantics, sharded across domains.

    Vertices are partitioned across [domains] shards; each shard's domain
    owns the states, visited flags and per-edge counters of its vertices
    ([edge_messages]/[edge_bits] entries are charged at delivery, and every
    edge is delivered to exactly one owner), so those arrays need no locks —
    each index has a single writer, and [Domain.join] publishes them to the
    caller.  A delivery that produces sends pushes each copy into the target
    owner's lock-free {!Mailbox}.

    Termination uses a global in-flight counter: incremented {e before} a
    copy enters a mailbox (or a shard's delay queue), decremented only
    {e after} its delivery has been fully processed — children already
    counted — so the counter reads zero iff the whole network is quiescent,
    and zero is stable.  The first shard to observe zero (or an accepting
    terminal, or the step limit) publishes the outcome with a
    compare-and-set; the others stop at their next loop check.

    The delivery order so produced is just another legal asynchronous
    schedule (DESIGN §5): for the paper's protocols the outcome, the visited
    set and any conservation law agree with the sequential engine, while
    schedule-dependent measures (deliveries for non-tree protocols, bit
    high-water marks) may legitimately differ.

    Fault plans are honored with per-shard {!Runtime.Faults} instances.
    Because an edge's sends all originate in the shard owning its source
    vertex, each edge's [on_send] draw stream is consumed by exactly one
    instance and reproduces the sequential per-edge stream; only
    delivery-time [corrupt_bit] draws interleave differently (so with
    [corrupt = 0] the merged fault counters match the sequential run
    exactly — see the parity test).

    {!Runtime.Vfaults} plans are honored the same way, with per-shard
    instances: all deliveries addressed to a vertex happen in its owner's
    shard, so each vertex's fault stream and downtime clock (measured in
    deliveries {e to that vertex}) live in exactly one instance, and
    scripted crash fates fire at the same per-vertex delivery counts as in
    the sequential engine.  Checkpointing for [Restore] recovery runs at
    the fixed sound cadence of 1 (snapshot after every completed receive);
    the {!Runtime.Supervisor} retransmission layer is sequential-engine
    only — it needs the global quiescence probe the shards only pass at
    shutdown — so [vfault_stats.replayed] is always 0 here.

    {!Runtime.Churn} specs ride the same single-writer argument once more:
    an edge's offers all happen in the shard owning its target vertex, so
    each edge's churn clock (measured in offers {e on that edge}) and PRNG
    stream live in exactly one per-shard instance, and churn fates — which
    copies an absent edge swallows, when outages heal — match the
    sequential engine offer-for-offer.  [churn_stats] is the sum over
    shard instances and reconciles exactly with the [engine.churn.*]
    counters when [obs] is supplied. *)

type sharding =
  [ `Round_robin  (** [owner v = v mod domains]. *)
  | `Bfs_layers
    (** Owner by BFS depth from [s] mod [domains]: keeps a wavefront's
        vertices together, so tree/DAG floods hand whole layers between
        shards instead of scattering every delivery. *) ]

module Make (P : Runtime.Protocol_intf.PROTOCOL) : sig
  type full = {
    report : P.state Runtime.Engine.report;
    leftover : P.message list;
        (** Messages still in flight when the run stopped (pooled, delayed
            or stranded in a mailbox) — the in-flight part of the final
            linear cut, as [Engine]'s [on_undelivered] hook reports it. *)
  }

  val run_full :
    ?domains:int ->
    ?sharding:sharding ->
    ?payload_bits:int ->
    ?step_limit:int ->
    ?faults:Runtime.Faults.t ->
    ?vfaults:Runtime.Vfaults.t ->
    ?churn:Runtime.Churn.t ->
    ?stop:(unit -> bool) ->
    ?obs:Obs.t ->
    ?lineage:Obs.Lineage.t ->
    Digraph.t ->
    full
  (** Defaults: [domains = Domain.recommended_domain_count ()] (clamped to
      at least 1), [sharding = `Round_robin], [payload_bits = 0],
      [step_limit = 10_000_000], no faults, no [stop] hook.  The report's
      [final_in_flight] always equals [List.length leftover].

      [stop], when given, must be safe to call from any domain (the serve
      layer reads one [Atomic.t]); every shard polls it once per scheduling
      round, and the first [true] publishes outcome
      {!Runtime.Engine.Cancelled} via the same compare-and-set as the other
      stop conditions — undelivered copies land in [leftover] with in-flight
      accounting intact.

      [obs], when given, records per-shard telemetry on track [d] (the
      shard index): a [par.shard] span covering the worker's life,
      [par.idle] spans around quiescence-polling stretches, and — every
      [sample_every] local deliveries — samples of cumulative shard
      deliveries, the last mailbox batch size and the global in-flight
      count.  At worker exit each shard flushes atomic counters
      [par.shard<d>.deliveries], the grand total [par.deliveries] (always
      equal to the report's [deliveries]) and [par.idle_spins].

      [lineage], when given, records the causal forest with per-shard
      recorders merged into the caller's after join.  Node ids come from
      the global delivery-slot claim (unique, 1-based, reconciling with
      [deliveries]); [n_track] is the delivering shard.  Unlike the
      sequential engines the id {e assignment} is schedule-dependent, so
      there is no cross-engine parity contract here — only the
      node-count reconciliation. *)

  val run :
    ?domains:int ->
    ?sharding:sharding ->
    ?payload_bits:int ->
    ?step_limit:int ->
    ?faults:Runtime.Faults.t ->
    ?vfaults:Runtime.Vfaults.t ->
    ?churn:Runtime.Churn.t ->
    ?stop:(unit -> bool) ->
    ?obs:Obs.t ->
    ?lineage:Obs.Lineage.t ->
    Digraph.t ->
    P.state Runtime.Engine.report
  (** [run_full] without the leftover list. *)
end
