let run ?domains cfg ~runners ~graphs =
  (* Only the generation-phase evaluations fan out; shrinking and witness
     recording stay sequential in the caller, so the result (and its JSON)
     is identical to the sequential search — trial verdicts don't depend on
     evaluation order, and the fault streams are keyed by (seed, trial). *)
  Runtime.Chaos.run
    ~map:(fun f sets -> Pool.run ?domains (Array.length sets) (fun i -> f sets.(i)))
    cfg ~runners ~graphs
