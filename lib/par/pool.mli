(** A work-stealing domain pool for embarrassingly-parallel job arrays.

    [run ~domains n f] evaluates [f 0 .. f (n-1)] across [domains] domains
    (the calling domain included) and returns the results as an array in job
    order, regardless of which domain ran which job or in what order they
    finished.  Jobs are claimed from a shared atomic counter, so long and
    short jobs balance themselves.  If any job raises, the first exception
    (in job order) is re-raised in the caller with its backtrace after all
    domains have joined. *)

val run : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [domains] defaults to [Domain.recommended_domain_count ()]; it is
    clamped to [1 .. n]. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list f xs] = [List.map f xs], computed by {!run}: same result
    order, parallel evaluation. *)
