(** {!Runtime.Chaos} searches with the trial evaluations spread over a
    {!Pool}.

    Each of the [budget] generated fault sets is an independent engine run,
    so the evaluation phase is embarrassingly parallel; verdicts come back
    in trial order, and the subsequent shrink / dedup / witness phase runs
    sequentially in the caller — the merged {!Runtime.Chaos.result} (and
    its JSON) is byte-identical to the sequential search's. *)

val run :
  ?domains:int ->
  Runtime.Chaos.config ->
  runners:Runtime.Chaos.runner list ->
  graphs:Runtime.Campaign.graph_case list ->
  Runtime.Chaos.result
(** Same contract as {!Runtime.Chaos.run}; [domains] defaults to
    [Domain.recommended_domain_count ()]. *)
