(** Multicore execution layer.

    {!Engine} runs one protocol instance sharded across domains with the
    same observable semantics as {!Runtime.Engine} (the parallel delivery
    order is one more legal asynchronous schedule); {!Pool} spreads
    independent jobs — campaign cells, check-suite cases, bench repeats —
    over a work-stealing domain pool with deterministic result order; and
    {!Campaign} is {!Runtime.Campaign} on top of {!Pool}. *)

module Mailbox = Mailbox
module Pool = Pool
module Engine = Shard_engine
module Campaign = Campaign_par
module Chaos = Chaos_par

type sharding = Shard_engine.sharding
