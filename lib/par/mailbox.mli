(** Lock-free multi-producer single-consumer mailbox: a Treiber stack on an
    [Atomic] list head.

    Producers [push] one element with a CAS retry loop; the owning consumer
    [take_all]s the whole stack in one exchange and works through the batch
    locally, which keeps the contended operation O(1) regardless of batch
    size.  Pop order is LIFO per batch — for the sharded engine any order is
    a legal asynchronous schedule, so no fairness machinery is needed. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Safe from any domain. *)

val take_all : 'a t -> 'a list
(** Atomically detach and return everything pushed so far (most recent
    first); the mailbox is left empty.  Safe from any domain, but intended
    for the single owning consumer. *)

val is_empty : 'a t -> bool
