type 'a cell = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

let run ?domains n f =
  if n < 0 then invalid_arg "Pool.run: negative job count";
  let domains =
    match domains with
    | Some d when d < 1 -> invalid_arg "Pool.run: domains < 1"
    | Some d -> min d (max n 1)
    | None -> min (Domain.recommended_domain_count ()) (max n 1)
  in
  let results = Array.make n Pending in
  let next = Atomic.make 0 in
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then continue := false
      else
        (* Per-index single writer: job [i] is claimed exactly once, so this
           write is unracing; Domain.join publishes it to the caller. *)
        results.(i) <-
          (try Done (f i)
           with e -> Failed (e, Printexc.get_raw_backtrace ()))
    done
  in
  let others = List.init (domains - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join others;
  Array.map
    (function
      | Done v -> v
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending -> assert false)
    results

let map_list ?domains f xs =
  let a = Array.of_list xs in
  Array.to_list (run ?domains (Array.length a) (fun i -> f a.(i)))
