type sharding = [ `Round_robin | `Bfs_layers ]

(* Run status, CAS-published by the first shard that decides. *)
let st_running = 0
let st_terminated = 1
let st_step_limit = 2
let st_quiescent = 3
let st_cancelled = 4

module Make (P : Runtime.Protocol_intf.PROTOCOL) = struct
  module E = Runtime.Engine

  type flight = {
    fv : Digraph.vertex;
    fp : int;
    tv : Digraph.vertex;
    tp : int;
    edge : int;
    corrupt : bool;
    delay : int;  (** Delivery steps still to hold this copy, 0 = ready. *)
    (* Causal provenance (same convention as the sequential flights):
       [lp] = lineage node id of the receive that sent this copy, 0 for
       the root emission; [ld] = this copy's causal depth. *)
    lp : int;
    ld : int;
    msg : P.message;
  }

  type full = { report : P.state E.report; leftover : P.message list }

  (* Per-shard scalars; slot [d] is written only by domain [d] (the main
     domain touches the root owner's slot strictly before spawning), and
     read by the main domain strictly after [Domain.join]. *)
  type shard_stats = {
    mutable total_bits : int;
    mutable max_message_bits : int;
    mutable max_state_bits : int;
    mutable max_in_flight : int;
    mutable corrupted_deliveries : int;
    mutable garbled_drops : int;
    mutable checksum_rejects : int;
    mutable lost_state_bits : int;
    mutable checkpoints : int;
    mutable leftover : flight list;
  }

  let fresh_stats () =
    {
      total_bits = 0;
      max_message_bits = 0;
      max_state_bits = 0;
      max_in_flight = 0;
      corrupted_deliveries = 0;
      garbled_drops = 0;
      checksum_rejects = 0;
      lost_state_bits = 0;
      checkpoints = 0;
      leftover = [];
    }

  let flip_bit s b =
    let bytes = Bytes.of_string s in
    let i = b / 8 in
    Bytes.set bytes i
      (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl (7 - (b mod 8)))));
    Bytes.to_string bytes

  let run_full ?domains ?(sharding = `Round_robin) ?(payload_bits = 0)
      ?(step_limit = 10_000_000) ?(faults = Runtime.Faults.none)
      ?(vfaults = Runtime.Vfaults.none) ?(churn = Runtime.Churn.none) ?stop
      ?obs ?lineage g =
    (* Cooperative cancellation: every shard polls the (caller-supplied,
       domain-safe) hook once per scheduling round; the first to see [true]
       publishes [Cancelled] and the others stop at their next check, with
       undelivered copies folded into [leftover]/[final_in_flight]. *)
    let stop_now = match stop with None -> (fun () -> false) | Some f -> f in
    let domains =
      match domains with
      | Some d when d < 1 -> invalid_arg "Shard_engine.run: domains < 1"
      | Some d -> d
      | None -> Stdlib.max 1 (Domain.recommended_domain_count ())
    in
    let n = Digraph.n_vertices g in
    let ne = Digraph.n_edges g in
    let s = Digraph.source g in
    let t = Digraph.terminal g in
    let owner =
      match sharding with
      | `Round_robin -> Array.init n (fun v -> v mod domains)
      | `Bfs_layers ->
          let dist = Digraph.distances_from g s in
          Array.init n (fun v ->
              if dist.(v) >= 0 then dist.(v) mod domains else v mod domains)
    in
    let target = Array.make (Stdlib.max ne 1) (0, 0) in
    List.iter
      (fun u ->
        for j = 0 to Digraph.out_degree g u - 1 do
          target.(Digraph.edge_index g u j) <- Digraph.out_port_target_port g u j
        done)
      (Digraph.vertices g);
    (* Shared per-index single-writer arrays: entry [v] (resp. the entries of
       edges landing on [v]) is written only by [owner.(v)]'s domain. *)
    let states =
      Array.init n (fun v ->
          P.initial_state ~out_degree:(Digraph.out_degree g v)
            ~in_degree:(Digraph.in_degree g v))
    in
    let visited = Array.make n false in
    (* Per-vertex checkpoints (cadence 1: snapshot after every completed
       receive), single-writer like [states] — entry [v] is touched only by
       [owner.(v)]'s domain. *)
    let ckpt = Array.copy states in
    let ckpt_visited = Array.make n false in
    let edge_messages = Array.make (Stdlib.max ne 1) 0 in
    let edge_bits = Array.make (Stdlib.max ne 1) 0 in
    let mailboxes = Array.init domains (fun _ -> Mailbox.create ()) in
    let stats = Array.init domains (fun _ -> fresh_stats ()) in
    let faulty = not (Runtime.Faults.is_none faults) in
    let instances =
      Array.init domains (fun _ -> Runtime.Faults.Instance.start faults)
    in
    (* One vertex-fault instance per shard: all deliveries addressed to a
       vertex happen in its owner's domain, so each vertex's PRNG stream
       and up/down clock live in exactly one instance — the sharded fates
       match the sequential engine's delivery-for-delivery. *)
    let vfaulty = not (Runtime.Vfaults.is_none vfaults) in
    let vinstances =
      Array.init domains (fun _ -> Runtime.Vfaults.Instance.start vfaults)
    in
    (* One churn instance per shard, on the same single-writer argument: an
       edge's offers all happen in the shard owning its target vertex, so
       each edge's churn clock and PRNG stream live in exactly one instance
       and the sharded fates match the sequential engine's offer-for-offer. *)
    let churny = not (Runtime.Churn.is_none churn) in
    let cinstances =
      Array.init domains (fun _ -> Runtime.Churn.Instance.start churn)
    in
    let initial_of v =
      P.initial_state ~out_degree:(Digraph.out_degree g v)
        ~in_degree:(Digraph.in_degree g v)
    in
    let seen_tbls : (string, unit) Hashtbl.t array =
      Array.init domains (fun _ -> Hashtbl.create 64)
    in
    let in_flight = Atomic.make 0 in
    let deliveries = Atomic.make 0 in
    let status = Atomic.make st_running in
    let gc0 =
      match obs with
      | Some _ -> Some (Gc.quick_stat (), Gc.minor_words ())
      | None -> None
    in
    (* One lineage recorder per shard, same sampling/capacity/clock as
       the caller's; merged into it after join.  Node ids come from the
       global delivery-slot claim, so they are unique across shards. *)
    let lins =
      match lineage with
      | None -> [||]
      | Some (l : Obs.Lineage.t) ->
          Array.init domains (fun _ ->
              let s =
                Obs.Lineage.create ~sample_every:l.Obs.Lineage.sample_every
                  ~capacity:l.Obs.Lineage.capacity ~clock:l.Obs.Lineage.clock ()
              in
              Obs.Lineage.bind s ~n_vertices:n ~n_edges:ne;
              s)
    in
    let lin_on = lineage <> None in
    (* Sends: all of an edge's [on_send] draws happen in the shard owning its
       source vertex (the root's pre-spawn emission included), so each edge's
       fault stream lives in exactly one instance.  [lp]/[ld] are the
       sending receive's lineage node id and depth (0/0 for the root). *)
    let send fi st ~lp ~ld fv fp msg =
      let edge = Digraph.edge_index g fv fp in
      let tv, tp = target.(edge) in
      let ld = ld + 1 in
      let enqueue ~delay ~corrupt =
        let now = 1 + Atomic.fetch_and_add in_flight 1 in
        if now > st.max_in_flight then st.max_in_flight <- now;
        Mailbox.push mailboxes.(owner.(tv))
          { fv; fp; tv; tp; edge; corrupt; delay; lp; ld; msg }
      in
      if not faulty then enqueue ~delay:0 ~corrupt:false
      else
        List.iter
          (fun ({ delay; flip_bit = corrupt } : Runtime.Faults.copy_fate) ->
            enqueue ~delay ~corrupt)
          (Runtime.Faults.Instance.on_send fi ~edge)
    in
    let worker d =
      let st = stats.(d) in
      let mb = mailboxes.(d) in
      let fi = instances.(d) in
      let vfi = vinstances.(d) in
      let seen = seen_tbls.(d) in
      (* Copies held back by a delay fault, released against this shard's
         own delivery clock — a legal schedule, like everything else here. *)
      let delayed : (int * int, flight) Runtime.Binheap.t =
        Runtime.Binheap.create ()
      in
      let local_deliveries = ref 0 in
      let tie = ref 0 in
      (* Telemetry (track = shard index, one Perfetto row per shard).  The
         timeline ring is multi-writer-safe; counters flush once, at worker
         exit, through atomic cells. *)
      let obs_tl =
        match obs with
        | Some (o : Obs.t) -> Some (o.Obs.timeline, o.Obs.sample_every)
        | None -> None
      in
      let last_batch = ref 0 in
      let idle = ref false in
      let idle_spins = ref 0 in
      let obs_sample () =
        match obs_tl with
        | None -> ()
        | Some (tl, _) ->
            Obs.Timeline.sample tl ~track:d "par.shard_deliveries"
              (float_of_int !local_deliveries);
            Obs.Timeline.sample tl ~track:d "par.mailbox_batch"
              (float_of_int !last_batch);
            Obs.Timeline.sample tl ~track:d "par.in_flight"
              (float_of_int (Atomic.get in_flight))
      in
      let not_idle () =
        if !idle then begin
          idle := false;
          match obs_tl with
          | Some (tl, _) -> Obs.Timeline.end_span tl ~track:d "par.idle"
          | None -> ()
        end
      in
      let go_idle () =
        if not !idle then begin
          idle := true;
          match obs_tl with
          | Some (tl, _) -> Obs.Timeline.begin_span tl ~track:d "par.idle"
          | None -> ()
        end;
        incr idle_spins
      in
      let note_state state =
        let b = P.state_bits state in
        if b > st.max_state_bits then st.max_state_bits <- b
      in
      let deliver f =
        (* Claim a global delivery slot; past the limit, undo and stop. *)
        let claim = Atomic.fetch_and_add deliveries 1 in
        if claim >= step_limit then begin
          ignore (Atomic.fetch_and_add deliveries (-1));
          ignore (Atomic.compare_and_set status st_running st_step_limit);
          st.leftover <- f :: st.leftover
        end
        else begin
          (* The claimed slot (1-based) is this delivery's lineage node
             id — rolled-back claims above never become nodes, so node
             counts still reconcile with the report. *)
          let node_id = claim + 1 in
          if lin_on then
            Obs.Lineage.note lins.(d) ~id:node_id ~parent:f.lp ~depth:f.ld
              ~edge:f.edge ~vertex:f.tv ~track:d;
          incr local_deliveries;
          (match obs_tl with
          | Some (_, k) when !local_deliveries mod k = 0 -> obs_sample ()
          | _ -> ());
          (* Churn fate first, on the edge's own offer clock, exactly as in
             the sequential engine: a copy offered on an absent edge burns
             its delivery slot but is charged no bits and never reaches the
             edge- or vertex-fault coins. *)
          let cfate =
            if churny then
              Runtime.Churn.Instance.on_offer cinstances.(d) ~edge:f.edge
            else Runtime.Churn.Cross
          in
          if cfate <> Runtime.Churn.Cross then begin
            match obs_tl with
            | None -> ()
            | Some (tl, _) ->
                let mark kind =
                  Obs.Timeline.instant tl ~track:d
                    (Printf.sprintf "churn.%s:%d" kind f.edge)
                in
                (match cfate with
                | Runtime.Churn.Removed left ->
                    mark "remove";
                    if left = 0 then mark "heal"
                | Runtime.Churn.Back `Heal -> mark "heal"
                | Runtime.Churn.Back `Add -> mark "add"
                | Runtime.Churn.Down | Runtime.Churn.Cross -> ())
          end
          else begin
          let w = Bitio.Bit_writer.create () in
          P.encode w f.msg;
          let bits = Bitio.Bit_writer.length w + payload_bits in
          let key =
            string_of_int (Bitio.Bit_writer.length w)
            ^ ":"
            ^ Bitio.Bit_writer.to_string w
          in
          if not (Hashtbl.mem seen key) then Hashtbl.add seen key ();
          st.total_bits <- st.total_bits + bits;
          edge_messages.(f.edge) <- edge_messages.(f.edge) + 1;
          edge_bits.(f.edge) <- edge_bits.(f.edge) + bits;
          if bits > st.max_message_bits then st.max_message_bits <- bits;
          (* Vertex fate first, as in the sequential engine: a delivery a
             down/stuttering/crashing vertex swallows is charged to the
             edge but never decoded. *)
          let vfate =
            if vfaulty then Runtime.Vfaults.Instance.on_deliver vfi ~vertex:f.tv
            else Runtime.Vfaults.Deliver
          in
          (match vfate with
          | Runtime.Vfaults.Stutter | Runtime.Vfaults.Down_drop -> ()
          | Runtime.Vfaults.Crash (recovery, _) -> (
              let old_bits = P.state_bits states.(f.tv) in
              match recovery with
              | Runtime.Vfaults.Stop -> ()
              | Runtime.Vfaults.Amnesia ->
                  st.lost_state_bits <- st.lost_state_bits + old_bits;
                  states.(f.tv) <- initial_of f.tv;
                  visited.(f.tv) <- false
              | Runtime.Vfaults.Restore ->
                  let restored = ckpt.(f.tv) in
                  st.lost_state_bits <-
                    st.lost_state_bits
                    + Stdlib.max 0 (old_bits - P.state_bits restored);
                  states.(f.tv) <- restored;
                  visited.(f.tv) <- ckpt_visited.(f.tv))
          | Runtime.Vfaults.Deliver -> (
          let delivered =
            if not f.corrupt then Some f.msg
            else
              let len = Bitio.Bit_writer.length w in
              if len = 0 then Some f.msg
              else begin
                let b =
                  Runtime.Faults.Instance.corrupt_bit fi ~edge:f.edge
                    ~length_bits:len
                in
                let s = flip_bit (Bitio.Bit_writer.to_string w) b in
                let r = Bitio.Bit_reader.of_string ~length_bits:len s in
                match P.decode r with
                | decoded ->
                    if not (P.equal_message decoded f.msg) then
                      st.corrupted_deliveries <- st.corrupted_deliveries + 1;
                    Some decoded
                | exception Runtime.Protocol_intf.Checksum_reject ->
                    st.checksum_rejects <- st.checksum_rejects + 1;
                    None
                | exception _ ->
                    st.garbled_drops <- st.garbled_drops + 1;
                    None
              end
          in
          match delivered with
          | None -> ()
          | Some msg ->
              visited.(f.tv) <- true;
              let state', sends =
                P.receive
                  ~out_degree:(Digraph.out_degree g f.tv)
                  ~in_degree:(Digraph.in_degree g f.tv)
                  states.(f.tv) msg ~in_port:f.tp
              in
              states.(f.tv) <- state';
              note_state state';
              if vfaulty then begin
                ckpt.(f.tv) <- state';
                ckpt_visited.(f.tv) <- true;
                st.checkpoints <- st.checkpoints + 1
              end;
              List.iter (fun (j, m) -> send fi st ~lp:node_id ~ld:f.ld f.tv j m) sends;
              if f.tv = t && P.accepting state' then
                ignore (Atomic.compare_and_set status st_running st_terminated)))
          end;
          (* Only now give up the in-flight count: children are already
             counted, so the counter can never dip to 0 with work pending. *)
          ignore (Atomic.fetch_and_add in_flight (-1))
        end
      in
      let handle f =
        if Atomic.get status <> st_running then st.leftover <- f :: st.leftover
        else if f.delay > 0 then begin
          incr tie;
          Runtime.Binheap.push delayed
            (!local_deliveries + f.delay, !tie)
            { f with delay = 0 }
        end
        else deliver f
      in
      let release_due () =
        let continue = ref true in
        while !continue do
          match Runtime.Binheap.peek delayed with
          | Some ((release, _), _) when release <= !local_deliveries -> (
              match Runtime.Binheap.pop delayed with
              | Some (_, f) -> handle f
              | None -> continue := false)
          | _ -> continue := false
        done
      in
      (match obs_tl with
      | Some (tl, _) -> Obs.Timeline.begin_span tl ~track:d "par.shard"
      | None -> ());
      while Atomic.get status = st_running do
        if stop_now () then
          ignore (Atomic.compare_and_set status st_running st_cancelled);
        release_due ();
        match Mailbox.take_all mb with
        | _ :: _ as batch ->
            not_idle ();
            last_batch := List.length batch;
            List.iter handle batch
        | [] -> (
            (* Nothing deliverable here; fast-forward idle time to our next
               delayed copy, else check for global quiescence. *)
            match Runtime.Binheap.pop delayed with
            | Some (_, f) ->
                not_idle ();
                handle f
            | None ->
                if Atomic.get in_flight = 0 then
                  ignore
                    (Atomic.compare_and_set status st_running st_quiescent)
                else begin
                  go_idle ();
                  Domain.cpu_relax ()
                end)
      done;
      not_idle ();
      (* Still-counted copies this shard holds: the delay queue, plus
         whatever the final mailbox drain after join doesn't catch. *)
      let continue = ref true in
      while !continue do
        match Runtime.Binheap.pop delayed with
        | Some (_, f) -> st.leftover <- f :: st.leftover
        | None -> continue := false
      done;
      (match obs with
      | None -> ()
      | Some o ->
          obs_sample ();
          (match obs_tl with
          | Some (tl, _) -> Obs.Timeline.end_span tl ~track:d "par.shard"
          | None -> ());
          let reg = o.Obs.registry in
          let addc name v = Obs.Registry.aadd (Obs.Registry.acounter reg name) v in
          addc (Printf.sprintf "par.shard%d.deliveries" d) !local_deliveries;
          addc "par.deliveries" !local_deliveries;
          addc "par.idle_spins" !idle_spins)
    in
    (* The root's spontaneous emission, before any domain starts.  Valid
       networks give [s] in-degree 0, so its out-edges send only here, in
       its owner's fault instance. *)
    let root_owner = owner.(s) in
    List.iter
      (fun (j, msg) ->
        send instances.(root_owner) stats.(root_owner) ~lp:0 ~ld:0 s j msg)
      (P.root_emit ~out_degree:(Digraph.out_degree g s));
    visited.(s) <- true;
    let spawned =
      List.init (domains - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
    in
    worker 0;
    List.iter Domain.join spawned;
    (* Copies pushed after their target shard stopped looking. *)
    let stranded =
      Array.fold_left
        (fun acc mb -> List.rev_append (Mailbox.take_all mb) acc)
        [] mailboxes
    in
    let leftover_flights =
      Array.fold_left
        (fun acc st -> List.rev_append st.leftover acc)
        stranded stats
    in
    let outcome =
      match Atomic.get status with
      | st when st = st_terminated -> E.Terminated
      | st when st = st_step_limit -> E.Step_limit
      | st when st = st_cancelled -> E.Cancelled
      | _ -> if P.accepting states.(t) then E.Terminated else E.Quiescent
    in
    let seen_all = Hashtbl.create 64 in
    Array.iter
      (fun tbl ->
        Hashtbl.iter
          (fun k () -> if not (Hashtbl.mem seen_all k) then Hashtbl.add seen_all k ())
          tbl)
      seen_tbls;
    let sum f = Array.fold_left (fun acc st -> acc + f st) 0 stats in
    let maxi f = Array.fold_left (fun acc st -> Stdlib.max acc (f st)) 0 stats in
    let fault_stats =
      if not faulty then
        {
          E.no_faults_stats with
          corrupted_deliveries = sum (fun st -> st.corrupted_deliveries);
          garbled_drops = sum (fun st -> st.garbled_drops);
          checksum_rejects = sum (fun st -> st.checksum_rejects);
        }
      else
        {
          E.dropped_copies =
            Array.fold_left
              (fun acc fi -> acc + Runtime.Faults.Instance.dropped_copies fi)
              0 instances;
          extra_copies =
            Array.fold_left
              (fun acc fi -> acc + Runtime.Faults.Instance.extra_copies fi)
              0 instances;
          delayed_copies =
            Array.fold_left
              (fun acc fi -> acc + Runtime.Faults.Instance.delayed_copies fi)
              0 instances;
          corrupted_deliveries = sum (fun st -> st.corrupted_deliveries);
          garbled_drops = sum (fun st -> st.garbled_drops);
          checksum_rejects = sum (fun st -> st.checksum_rejects);
          dead_edges =
            List.sort_uniq compare
              (Array.fold_left
                 (fun acc fi ->
                   List.rev_append (Runtime.Faults.Instance.dead_edges fi) acc)
                 [] instances);
        }
    in
    let vsum f =
      Array.fold_left (fun acc vi -> acc + f vi) 0 vinstances
    in
    let vfault_stats =
      {
        E.crashes = vsum Runtime.Vfaults.Instance.crashes;
        restarts = vsum Runtime.Vfaults.Instance.restarts;
        lost_state_bits = sum (fun st -> st.lost_state_bits);
        down_drops = vsum Runtime.Vfaults.Instance.down_drops;
        stuttered = vsum Runtime.Vfaults.Instance.stuttered;
        stopped_vertices =
          List.sort_uniq compare
            (Array.fold_left
               (fun acc vi ->
                 List.rev_append (Runtime.Vfaults.Instance.stopped vi) acc)
               [] vinstances);
        checkpoints = sum (fun st -> st.checkpoints);
        replayed = 0;
      }
    in
    let csum f = Array.fold_left (fun acc ci -> acc + f ci) 0 cinstances in
    let churn_stats =
      if not churny then E.no_churn_stats
      else
        {
          E.adds = csum Runtime.Churn.Instance.adds;
          removes = csum Runtime.Churn.Instance.removes;
          heals = csum Runtime.Churn.Instance.heals;
          messages_lost_in_flight = csum Runtime.Churn.Instance.lost;
          window_violations = csum Runtime.Churn.Instance.window_violations;
        }
    in
    (match lineage with
    | Some l -> Array.iter (fun s -> Obs.Lineage.merge ~into:l s) lins
    | None -> ());
    (* Same telemetry epilogue as the sequential engines: GC deltas as
       gauges (the whole run, all domains' allocations folded by the
       runtime into one [quick_stat]) and the timeline-overwrite mirror. *)
    (match (obs, gc0) with
    | Some (o : Obs.t), Some (g0, mw0) ->
        let g1 = Gc.quick_stat () in
        let set name v =
          Obs.Registry.set (Obs.Registry.gauge o.Obs.registry name) v
        in
        set "engine.gc.minor_words" (int_of_float (Gc.minor_words () -. mw0));
        set "engine.gc.major_words"
          (int_of_float (g1.Gc.major_words -. g0.Gc.major_words));
        set "engine.gc.heap_words" g1.Gc.heap_words;
        set "engine.gc.compactions" (g1.Gc.compactions - g0.Gc.compactions);
        let c = Obs.Registry.counter o.Obs.registry "timeline.dropped" in
        let d = Obs.Timeline.dropped o.Obs.timeline in
        let seen = Obs.Registry.value c in
        if d > seen then Obs.Registry.add c (d - seen)
    | _ -> ());
    (match obs with
    | Some (o : Obs.t) when churny ->
        (* Fold the per-shard churn totals into the same [engine.churn.*]
           counters the sequential engine uses, so the report reconciles
           exactly with the registry in both engines. *)
        let reg = o.Obs.registry in
        let addc name v = Obs.Registry.aadd (Obs.Registry.acounter reg name) v in
        addc "engine.churn.adds" churn_stats.E.adds;
        addc "engine.churn.removes" churn_stats.E.removes;
        addc "engine.churn.heals" churn_stats.E.heals;
        addc "engine.churn.lost_in_flight" churn_stats.E.messages_lost_in_flight;
        addc "engine.churn.window_violations" churn_stats.E.window_violations
    | _ -> ());
    let report =
      {
        E.outcome;
        deliveries = Atomic.get deliveries;
        total_bits = sum (fun st -> st.total_bits);
        max_edge_bits = Array.fold_left Stdlib.max 0 edge_bits;
        max_message_bits = maxi (fun st -> st.max_message_bits);
        max_state_bits = maxi (fun st -> st.max_state_bits);
        max_in_flight = maxi (fun st -> st.max_in_flight);
        final_in_flight = Atomic.get in_flight;
        distinct_messages = Hashtbl.length seen_all;
        edge_messages;
        edge_bits;
        visited;
        states;
        fault_stats;
        vfault_stats;
        churn_stats;
      }
    in
    { report; leftover = List.map (fun f -> f.msg) leftover_flights }

  let run ?domains ?sharding ?payload_bits ?step_limit ?faults ?vfaults ?churn
      ?stop ?obs ?lineage g =
    (run_full ?domains ?sharding ?payload_bits ?step_limit ?faults ?vfaults
       ?churn ?stop ?obs ?lineage g)
      .report
end
