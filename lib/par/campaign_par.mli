(** {!Runtime.Campaign} sweeps sharded over a {!Pool}.

    The cross product {e runners × graphs × grid} is split into
    single-(runner, graph, point) jobs, each run through the sequential
    campaign machinery on its own domain, and the partial results are merged
    in job order — so cells, violations and starvations come back in exactly
    the order the sequential sweep would list them, and [to_json] of the
    merged result is byte-identical to the sequential one.  Each cell still
    sweeps its full seed list, which keeps the per-job cost meaningful and
    the fault streams identical to the sequential campaign (they are keyed
    by [(seed, edge)], not by schedule). *)

val run :
  ?domains:int ->
  ?step_limit:int ->
  ?max_shrinks:int ->
  runners:Runtime.Campaign.runner list ->
  graphs:Runtime.Campaign.graph_case list ->
  grid:Runtime.Campaign.fault_point list ->
  seeds:int list ->
  unit ->
  Runtime.Campaign.result
(** Same contract as {!Runtime.Campaign.run}; [domains] defaults to
    [Domain.recommended_domain_count ()].  [max_shrinks] bounds the shrink
    work {e per job} rather than globally, so a parallel sweep may shrink
    more violations than a sequential one — never fewer. *)
