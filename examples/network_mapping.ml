(* Topology extraction from an anonymous overlay — the paper's "mapping"
   application (Section 6): turn a fully anonymous directed network into a
   labeled one and reconstruct its entire port-numbered topology at the
   terminal.

     dune exec examples/network_mapping.exe

   Scenario: a peer-to-peer overlay with one-way NAT-ed connections.  An
   operator controls only the entry node (s) and an exit collector (t) and
   wants an exact map of the overlay without any cooperation beyond the
   anonymous protocol. *)

let pf = Printf.printf

module G = Digraph
module M = Anonet.Mapping

let () =
  let prng = Prng.create 2026 in
  let overlay =
    G.Families.random_digraph prng ~n:18 ~extra_edges:12 ~back_edges:5
      ~t_edge_prob:0.25
  in
  pf "Ground-truth overlay: %d peers, %d one-way connections (cyclic: %b)\n\n"
    (G.n_vertices overlay) (G.n_edges overlay)
    (not (G.is_dag overlay));

  let stats, map = Anonet.map_network overlay in
  pf "Mapping protocol: %s after %d messages, %d bits total.\n\n"
    (match stats.outcome with
    | Runtime.Engine.Terminated -> "terminated"
    | Runtime.Engine.Quiescent -> "quiescent"
    | Runtime.Engine.Step_limit -> "step limit"
    | Runtime.Engine.Cancelled -> "cancelled")
    stats.deliveries stats.total_bits;

  match map with
  | Error e -> pf "extraction failed: %s\n" e
  | Ok m ->
      pf "Reconstructed map: %d vertices, %d edges.\n" (G.n_vertices m.M.graph)
        (G.n_edges m.M.graph);
      pf "Exactly isomorphic to ground truth: %b\n\n"
        (M.map_isomorphic m overlay);

      pf "Per-peer view (reconstructed id, interval label, out-neighbors):\n";
      List.iter
        (fun v ->
          let label =
            match m.M.labels.(v) with
            | Some iv -> Intervals.Interval.to_string iv
            | None -> if v = 0 then "(entry s)" else "(collector t)"
          in
          let outs =
            List.init (G.out_degree m.M.graph v) (fun j ->
                string_of_int (G.out_neighbor m.M.graph v j))
          in
          pf "  %2d  %-28s -> [%s]\n" v label (String.concat "; " outs))
        (G.vertices m.M.graph);

      (* The map is a real graph: run queries on it. *)
      let comp, n_scc = G.scc m.M.graph in
      ignore comp;
      pf "\nQueries on the reconstructed map:\n";
      pf "  strongly connected components : %d\n" n_scc;
      pf "  max out-degree                : %d\n" (G.max_out_degree m.M.graph);
      pf "\nGraphviz of the reconstruction (paste into `dot -Tpng`):\n\n%s"
        (G.Dot.to_dot ~name:"overlay_map"
           ~vertex_label:(fun v ->
             match m.M.labels.(v) with
             | Some iv -> Intervals.Interval.to_string iv
             | None -> if v = 0 then "s" else "t")
           m.M.graph)
