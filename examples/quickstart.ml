(* Quickstart: broadcast a message through a directed anonymous network and
   observe termination detection.

     dune exec examples/quickstart.exe

   The network below is directed and NOT strongly connected — vertex 3 can
   never talk back to vertex 1 — yet the protocol still halts exactly when
   every vertex has the message. *)

let pf = Printf.printf

let describe (st : Anonet.stats) =
  pf "  outcome            : %s\n"
    (match st.outcome with
    | Runtime.Engine.Terminated -> "terminated (t knows everyone got m)"
    | Runtime.Engine.Quiescent -> "quiescent (t cannot declare completion)"
    | Runtime.Engine.Step_limit -> "step limit"
    | Runtime.Engine.Cancelled -> "cancelled");
  pf "  messages delivered : %d\n" st.deliveries;
  pf "  total bits on wire : %d\n" st.total_bits;
  pf "  bandwidth (1 edge) : %d bits\n" st.max_edge_bits;
  pf "  every vertex got m : %b\n\n" st.all_visited

let () =
  (* A little network: s feeds a cycle (1 -> 2 -> 4 -> 1) with a branch
     through 3; only 3 and 4 reach the terminal t = 5. *)
  let g =
    Digraph.make ~n:6 ~s:0 ~t:5
      [ (0, 1); (1, 2); (2, 4); (4, 1); (2, 3); (3, 5); (4, 5) ]
  in
  pf "Network: %d vertices, %d edges, contains a directed cycle.\n\n"
    (Digraph.n_vertices g) (Digraph.n_edges g);

  pf "[1] Broadcast a 128-bit message with the Section 4 protocol:\n";
  describe (Anonet.broadcast_general ~payload_bits:128 g);

  pf "[2] Assign unique labels (Section 5):\n";
  let st, labels = Anonet.assign_labels g in
  describe st;
  List.iter
    (fun v ->
      pf "  vertex %d label = %s\n" v (Intervals.Iset.to_string labels.(v)))
    (Digraph.internal_vertices g);

  pf "\n[3] The same broadcast, but with a 'trap' vertex hanging off the\n";
  pf "    cycle (reachable from s, no path to t).  The paper requires the\n";
  pf "    protocol to NOT terminate — and it doesn't:\n";
  let trapped = Digraph.Families.add_trap g ~from_vertex:1 in
  describe (Anonet.broadcast_general ~payload_bits:128 trapped)
