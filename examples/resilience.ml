(* Probing the model's channel assumptions — what the paper's protocols
   guarantee when the network misbehaves, and the one protocol that is
   stronger than required.

     dune exec examples/resilience.exe

   The paper's channels are reliable and exactly-once.  This example injects
   drops and duplications on the same fleet of random networks and reports,
   per protocol: correct terminations, FALSE terminations (halting before
   everyone has the message — the one thing a broadcast protocol must never
   do), and non-terminations. *)

let pf = Printf.printf

module G = Digraph
module F = Digraph.Families
module E = Runtime.Engine

let trials = 40

let fleet seed_base i =
  let prng = Prng.create (seed_base + i) in
  F.random_digraph prng ~n:25 ~extra_edges:12 ~back_edges:6 ~t_edge_prob:0.25

let tally name run =
  let ok = ref 0 and false_term = ref 0 and stuck = ref 0 in
  for i = 1 to trials do
    let g = fleet 500 i in
    let r, visited_all = run i g in
    match r with
    | E.Terminated -> if visited_all then incr ok else incr false_term
    | E.Quiescent -> incr stuck
    | E.Step_limit | E.Cancelled -> ()
  done;
  pf "  %-34s %8d %12d %10d\n" name !ok !false_term !stuck

let visited (r : _ E.report) = Array.for_all (fun v -> v) r.visited

let () =
  pf "Fault injection over %d random anonymous networks (|V|=27).\n\n" trials;
  pf "  %-34s %8s %12s %10s\n" "protocol + channel" "ok" "FALSE-term" "no-term";

  tally "general, reliable channels" (fun _ g ->
      let r = Anonet.General_engine.run g in
      (r.outcome, visited r));
  tally "general, 15% drops" (fun i g ->
      let faults = Runtime.Faults.create ~drop:0.15 ~seed:i () in
      let r = Anonet.General_engine.run ~faults g in
      (r.outcome, visited r));
  tally "general, 30% duplication" (fun i g ->
      let faults = Runtime.Faults.create ~duplicate:0.3 ~seed:i () in
      let r = Anonet.General_engine.run ~faults g in
      (r.outcome, visited r));
  tally "mapping, 30% duplication" (fun i g ->
      let faults = Runtime.Faults.create ~duplicate:0.3 ~seed:i () in
      let r = Anonet.Mapping_engine.run ~faults g in
      (r.outcome, visited r));

  pf "\nDrops only ever turn termination into waiting (safe).  Duplication\n";
  pf "can fool the broadcast protocol into early termination — a duplicated\n";
  pf "commodity looks exactly like a detected cycle — but never the mapping\n";
  pf "protocol, whose termination also waits for one adjacency fact per\n";
  pf "announced out-edge, and facts are only minted by visited vertices.\n\n";

  (* Synchronous replay: same protocol, measurable time. *)
  let module Sync = Runtime.Sync_engine.Make (Anonet.General_broadcast) in
  pf "Synchronous rounds on the same fleet (time complexity, Section 2):\n";
  pf "  %6s %8s %8s %8s\n" "net" "|V|" "rounds" "msgs";
  for i = 1 to 5 do
    let g = fleet 500 i in
    let r = Sync.run g in
    pf "  %6d %8d %8d %8d\n" i (G.n_vertices g) r.rounds r.base.deliveries
  done
