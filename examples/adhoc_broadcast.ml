(* Ad-hoc network broadcast — the motivating scenario from the paper's
   introduction: wireless ad-hoc networks with asymmetric (hence directed)
   links, where nodes have no identifiers and no topology knowledge.

     dune exec examples/adhoc_broadcast.exe

   We model a deployment as a random directed network: a gateway (s) floods
   a firmware update; a sink (t) must decide when every sensor has it.  The
   example compares the protocol ladder on the same deployments:

     - flood        : delivers m but can never decide completion;
     - dag protocol : decides completion, but deadlocks when asymmetric
                      links close a routing loop;
     - general      : decides completion on anything. *)

let pf = Printf.printf

module F = Digraph.Families
module E = Runtime.Engine

let outcome = function
  | E.Terminated -> "terminated"
  | E.Quiescent -> "quiescent"
  | E.Step_limit -> "limit"
  | E.Cancelled -> "cancelled"

let firmware_bits = 1024

let run_one name g =
  pf "\n--- deployment: %s (|V|=%d |E|=%d, %s) ---\n" name (Digraph.n_vertices g)
    (Digraph.n_edges g)
    (match Digraph.classify g with
    | `Grounded_tree -> "grounded tree"
    | `Dag -> "acyclic"
    | `General -> "has routing loops");
  pf "%12s %12s %10s %14s %10s\n" "protocol" "outcome" "msgs" "bits" "visited";
  let flood_report = Anonet.Flood_engine.run ~payload_bits:firmware_bits g in
  pf "%12s %12s %10d %14d %10b\n" "flood" (outcome flood_report.E.outcome)
    flood_report.E.deliveries flood_report.E.total_bits
    (Array.for_all (fun v -> v) flood_report.E.visited);
  let show name (st : Anonet.stats) =
    pf "%12s %12s %10d %14d %10b\n" name (outcome st.outcome) st.deliveries
      st.total_bits st.all_visited
  in
  show "dag-wait" (Anonet.broadcast_dag ~payload_bits:firmware_bits g);
  show "general" (Anonet.broadcast_general ~payload_bits:firmware_bits g)

let () =
  pf "Firmware update broadcast over anonymous ad-hoc deployments\n";
  pf "(payload %d bits; every protocol message carries it).\n" firmware_bits;

  (* Deployment 1: a clean tiered deployment — links all point downstream
     (e.g. high-power gateway to low-power sensors): a DAG. *)
  let tiers = F.random_dag (Prng.create 11) ~n:40 ~extra_edges:30 ~t_edge_prob:0.2 in
  run_one "tiered (acyclic)" tiers;

  (* Deployment 2: same scale, but a few sensor pairs have asymmetric
     power levels that happen to close directed loops. *)
  let loopy =
    F.random_digraph (Prng.create 12) ~n:40 ~extra_edges:25 ~back_edges:8
      ~t_edge_prob:0.2
  in
  run_one "asymmetric (loops)" loopy;

  (* Deployment 3: a long relay chain through a canyon. *)
  run_one "relay chain" (F.path 30);

  pf "\nTakeaways: flood never detects completion (the sink would wait\n";
  pf "forever); the DAG protocol detects it but deadlocks on loops; the\n";
  pf "interval protocol of Section 4 handles every deployment.\n"
